"""Content-addressed embedding registry: memory LRU over a memmapped disk tier.

Constructions dominate runtime (DESIGN.md profiling) and are fully
deterministic, so the service memoizes them.  An artifact is keyed by
:meth:`EmbeddingSpec.cache_key` — ``(guest kind, params, construction
version)`` hashed to a stable content address — and stored as one binary
*store file* (:mod:`repro.service.store`) under a per-kind shard directory:
``<cache_dir>/<kind>/<key>.rpstore``.  The store file carries the
embedding's flat CSR routing arrays 8-byte-aligned for ``numpy.memmap``
plus the exact verified artifact text as a trailing blob, so the serving
fast path (:meth:`get_store`) hydrates a routable shard in O(ms) while
full embedding objects (:meth:`get`) materialize from the checksummed
blob only on demand.  Pre-store JSON artifacts (``<cache_dir>/<key>.json``)
remain readable as a compatibility fallback and upgrade in place via
:meth:`migrate` (``repro cache migrate``).

Safety model: an artifact is only written after the embedding verified at
build time, and the file carries SHA-256 digests of both the array payload
and the blob, computed from the exact bytes that were verified.  On load
the registry checks schema, spec key, package version, the dtype contract
and array extents; small payloads re-hash eagerly and huge ones defer the
re-hash (see :data:`repro.service.store.EAGER_VERIFY_LIMIT` — hashing a
378 MB Q_20 payload would cost the very O(s) this tier deletes), while
blob reads are always digest-checked.  A *corrupt or stale* artifact
(bad magic, checksum, version or key) is treated as a cache miss — the
bad file is removed and the caller rebuilds + reverifies.  A *transient*
read error (``PermissionError``, I/O failure) is also a miss but the file
is left alone and counted under ``disk_transient`` — deleting a healthy
13-second artifact over a flaky read would be self-inflicted cache loss.

Tier promotion: every cold (disk) open bumps a per-key counter; once a
key has been cold-opened ``promote_after`` times its mapped view is
pinned in the *warm* LRU tier so later lookups skip even the open+header
parse.  Per-tier hit rates are surfaced as ``cache_hit_rate{tier=...}``
gauges, and warm occupancy as ``warm_entries`` — the same observability
feed the service dashboards read.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.embedding import Embedding, MultiCopyEmbedding, MultiPathEmbedding
from repro.core.fast_verify import embedding_csr
from repro.core.serialize import from_json, to_json
from repro.hypercube.graph import Hypercube
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import profile_span
from repro.service.specs import EmbeddingSpec, build_spec
from repro.service.store import (
    STORE_SUFFIX,
    StoreIntegrityError,
    StoreView,
    open_store,
    read_store_header,
    write_store,
)

__all__ = [
    "EmbeddingRegistry",
    "encode_embedding",
    "decode_embedding",
    "default_cache_dir",
    "ARTIFACT_VERSION",
]

ARTIFACT_VERSION = 1

AnyEmbedding = Union[Embedding, MultiPathEmbedding, MultiCopyEmbedding]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/embeddings``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "embeddings"


def encode_embedding(emb: AnyEmbedding, construction: str = "") -> str:
    """Embedding -> payload text.  Multi-copy wraps its copies' payloads."""
    if isinstance(emb, MultiCopyEmbedding):
        return json.dumps(
            {
                "style": "multicopy",
                "host_dim": emb.host.n,
                "name": emb.name,
                "copy_load_allowed": emb.copy_load_allowed,
                "copies": [
                    json.loads(to_json(c, construction=construction))
                    for c in emb.copies
                ],
            }
        )
    return to_json(emb, construction=construction)


def decode_embedding(text: str, verify: bool = True) -> AnyEmbedding:
    """Payload text -> embedding (inverse of :func:`encode_embedding`)."""
    payload = json.loads(text)
    if payload.get("style") != "multicopy":
        return from_json(text, verify=verify)
    copies = [
        from_json(json.dumps(c), verify=False) for c in payload["copies"]
    ]
    if not copies:
        raise ValueError("multicopy payload has no copies")
    emb = MultiCopyEmbedding(
        Hypercube(payload["host_dim"]),
        copies[0].guest,
        copies,
        name=payload.get("name", ""),
        copy_load_allowed=payload.get("copy_load_allowed", 1),
    )
    if verify:
        emb.verify()
    return emb


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _package_version() -> str:
    from repro import __version__

    return str(__version__)


def make_artifact(spec: EmbeddingSpec, emb: AnyEmbedding) -> str:
    """Wrap a *verified* embedding as registry artifact text."""
    payload = encode_embedding(emb, construction=spec.describe())
    return json.dumps(
        {
            "artifact_version": ARTIFACT_VERSION,
            "key": spec.cache_key(),
            "spec": {"kind": spec.kind, "params": spec.param_dict()},
            "package_version": _package_version(),
            "construction": spec.describe(),
            "checksum": _checksum(payload),
            "payload": payload,
        }
    )


def _decode_artifact_text(artifact_text: str, key: str) -> AnyEmbedding:
    """Validate artifact text (version/key/checksum) and decode its payload."""
    artifact = json.loads(artifact_text)
    if artifact.get("artifact_version") != ARTIFACT_VERSION:
        raise ValueError("artifact version mismatch")
    if artifact.get("key") != key:
        raise ValueError("artifact key mismatch")
    payload = artifact["payload"]
    if artifact.get("checksum") != _checksum(payload):
        raise ValueError("payload checksum mismatch")
    # the checksum certifies these are the exact bytes written after the
    # build-time verify, so decoding skips the re-check
    return decode_embedding(payload, verify=False)


class EmbeddingRegistry:
    """Three-tier (memory LRU + warm memmap pins + disk) verified-embedding cache.

    ``promote_after`` cold opens of one key pin its memmapped
    :class:`~repro.service.store.StoreView` in the warm tier (an LRU of
    ``warm_capacity`` views); ``build_lock_timeout`` bounds how long a
    process waits on another process's in-flight build of the same key
    before building itself.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        memory_capacity: int = 32,
        metrics: Optional[MetricsRegistry] = None,
        warm_capacity: int = 8,
        promote_after: int = 2,
        build_lock_timeout: float = 600.0,
    ) -> None:
        if memory_capacity < 0:
            raise ValueError("memory_capacity must be >= 0")
        if warm_capacity < 0:
            raise ValueError("warm_capacity must be >= 0")
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.memory_capacity = memory_capacity
        self.warm_capacity = warm_capacity
        self.promote_after = max(1, promote_after)
        self.build_lock_timeout = build_lock_timeout
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, AnyEmbedding]" = OrderedDict()
        self._warm: "OrderedDict[str, StoreView]" = OrderedDict()
        self._cold_opens: Dict[str, int] = {}
        self._tier_counts: Dict[str, List[int]] = {}  # tier -> [hits, lookups]
        self._build_locks: Dict[str, threading.Lock] = {}

    # -- paths ---------------------------------------------------------------

    def path_for(self, spec: EmbeddingSpec) -> Path:
        """The binary store artifact path (sharded by construction kind)."""
        return self.cache_dir / spec.kind / f"{spec.cache_key()}{STORE_SUFFIX}"

    def legacy_path_for(self, spec: EmbeddingSpec) -> Path:
        """The pre-store JSON artifact path (compatibility fallback)."""
        return self.cache_dir / f"{spec.cache_key()}.json"

    def _lock_path_for(self, spec: EmbeddingSpec) -> Path:
        return self.cache_dir / spec.kind / f"{spec.cache_key()}.lock"

    # -- observability helpers -----------------------------------------------

    def _note_lookup(self, tier: str, hit: bool) -> None:
        """Track per-tier hit rate; surfaces as ``cache_hit_rate{tier=..}``."""
        with self._lock:
            counts = self._tier_counts.setdefault(tier, [0, 0])
            counts[0] += 1 if hit else 0
            counts[1] += 1
            rate = counts[0] / counts[1]
        self.metrics.gauge("cache_hit_rate", tier=tier).set(round(rate, 4))

    # -- memory tier -----------------------------------------------------------

    def _memory_get(self, key: str) -> Optional[AnyEmbedding]:
        with self._lock:
            emb = self._memory.get(key)
            if emb is not None:
                self._memory.move_to_end(key)
            return emb

    def _memory_put(self, key: str, emb: AnyEmbedding) -> None:
        if self.memory_capacity == 0:
            return
        with self._lock:
            self._memory[key] = emb
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_capacity:
                self._memory.popitem(last=False)
                self.metrics.incr("memory_evictions")

    # -- warm tier (pinned memmapped views) ------------------------------------

    def _warm_get(self, key: str) -> Optional[StoreView]:
        with self._lock:
            view = self._warm.get(key)
            if view is not None:
                self._warm.move_to_end(key)
            return view

    def _promote(self, key: str, view: StoreView) -> None:
        """Pin a cold-opened view once its open count clears the threshold.

        Eviction only drops the pin: any shard still serving off the
        evicted view keeps its own references to the mapped arrays.
        """
        if self.warm_capacity == 0:
            return
        with self._lock:
            opens = self._cold_opens.get(key, 0) + 1
            self._cold_opens[key] = opens
            if opens < self.promote_after:
                return
            self._warm[key] = view
            self._warm.move_to_end(key)
            evicted: List[StoreView] = []
            while len(self._warm) > self.warm_capacity:
                _, old = self._warm.popitem(last=False)
                evicted.append(old)
                self.metrics.incr("warm_evictions")
            occupancy = len(self._warm)
        for old in evicted:
            old.close()
        self.metrics.gauge("warm_entries").set(occupancy)
        self.metrics.incr("warm_promotions")

    # -- disk tier ---------------------------------------------------------------

    def _open_store(self, spec: EmbeddingSpec) -> Optional[StoreView]:
        """Map the binary artifact; None on miss, transient error, or corruption.

        Only decode/validation failures unlink the file; transient
        filesystem errors leave it in place for the next lookup.
        """
        path = self.path_for(spec)
        try:
            return open_store(
                path,
                expect_key=spec.cache_key(),
                expect_package_version=_package_version(),
                expect_artifact_version=ARTIFACT_VERSION,
            )
        except FileNotFoundError:
            return None
        except StoreIntegrityError:
            # damaged / stale / truncated: recover by rebuilding, not crashing
            self.metrics.incr("disk_corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        except OSError:
            # the file may be perfectly healthy — do NOT delete it
            self.metrics.incr("disk_transient")
            return None

    def get_store(self, spec: EmbeddingSpec) -> Optional[StoreView]:
        """The memmapped CSR view for ``spec`` — the O(ms) serving fast path.

        Warm tier first, then a cold ``numpy.memmap`` open of the store
        file.  Never builds and never materializes the embedding object.
        """
        key = spec.cache_key()
        view = self._warm_get(key)
        self._note_lookup("warm", view is not None)
        if view is not None:
            self.metrics.incr("warm_hits")
            return view
        with self.metrics.time("store_open"):
            view = self._open_store(spec)
        self._note_lookup("disk", view is not None)
        if view is None:
            self.metrics.incr("store_misses")
            return None
        self.metrics.incr("store_hits")
        self._promote(key, view)
        return view

    def _disk_load(self, spec: EmbeddingSpec) -> Optional[AnyEmbedding]:
        """Materialize the full embedding object from disk (either tier)."""
        view = self._open_store(spec)
        if view is not None:
            try:
                return _decode_artifact_text(view.blob_text(), spec.cache_key())
            except (StoreIntegrityError, ValueError, KeyError, TypeError):
                self.metrics.incr("disk_corrupt")
                try:
                    self.path_for(spec).unlink()
                except OSError:
                    pass
                return None
        return self._legacy_load(spec)

    def _legacy_load(self, spec: EmbeddingSpec) -> Optional[AnyEmbedding]:
        path = self.legacy_path_for(spec)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        except OSError:
            self.metrics.incr("disk_transient")
            return None
        try:
            artifact = json.loads(text)
            if artifact.get("package_version") != _package_version():
                raise ValueError("package version mismatch")
            emb = _decode_artifact_text(text, spec.cache_key())
        except Exception:
            self.metrics.incr("disk_corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.metrics.incr("legacy_hits")
        return emb

    # -- public API ------------------------------------------------------------

    def get(self, spec: EmbeddingSpec) -> Optional[AnyEmbedding]:
        """Cached embedding for ``spec``, or ``None`` on a full miss."""
        key = spec.cache_key()
        emb = self._memory_get(key)
        self._note_lookup("memory", emb is not None)
        if emb is not None:
            self.metrics.incr("memory_hits")
            return emb
        self.metrics.incr("memory_misses")
        with self.metrics.time("disk_load"):
            emb = self._disk_load(spec)
        if emb is not None:
            self.metrics.incr("disk_hits")
            self._memory_put(key, emb)
            return emb
        self.metrics.incr("disk_misses")
        return None

    def put(self, spec: EmbeddingSpec, emb: AnyEmbedding) -> AnyEmbedding:
        """Admit a *verified* embedding: write the store artifact atomically."""
        return self.admit_artifact(spec, make_artifact(spec, emb), emb)

    def admit_artifact(
        self,
        spec: EmbeddingSpec,
        artifact_text: str,
        emb: Optional[AnyEmbedding] = None,
    ) -> AnyEmbedding:
        """Write pre-encoded artifact text (engine workers encode remotely).

        The store file gets the CSR arrays for memmapped serving plus
        ``artifact_text`` verbatim as its blob; the write is tmp+fsync+
        rename so concurrent admits and crashes cannot tear it.
        """
        if emb is None:
            emb = _decode_artifact_text(artifact_text, spec.cache_key())
        with self.metrics.time("csr_export"):
            csr = embedding_csr(emb)
        with self.metrics.time("store_write"):
            write_store(
                self.path_for(spec),
                csr,
                artifact_text,
                spec_key=spec.cache_key(),
                kind=spec.kind,
                params=spec.param_dict(),
                package_version=_package_version(),
                construction=spec.describe(),
                artifact_version=ARTIFACT_VERSION,
            )
        self._memory_put(spec.cache_key(), emb)
        self.metrics.incr("artifacts_written")
        return emb

    # -- build single-flight -----------------------------------------------------

    def _key_lock(self, key: str) -> threading.Lock:
        with self._lock:
            lock = self._build_locks.get(key)
            if lock is None:
                lock = threading.Lock()
                self._build_locks[key] = lock
            return lock

    def _acquire_build_lock(self, spec: EmbeddingSpec) -> bool:
        """Try to claim the cross-process build lock for ``spec``."""
        path = self._lock_path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return True  # unlockable filesystem: just build
        try:
            os.write(fd, str(os.getpid()).encode())
        finally:
            os.close(fd)
        return True

    def _release_build_lock(self, spec: EmbeddingSpec) -> None:
        try:
            self._lock_path_for(spec).unlink()
        except OSError:
            pass

    def _lock_holder_alive(self, spec: EmbeddingSpec) -> bool:
        try:
            pid = int(self._lock_path_for(spec).read_text() or "0")
        except (OSError, ValueError):
            return False
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except OSError:
            return False
        return True

    def _await_other_build(self, spec: EmbeddingSpec) -> Optional[AnyEmbedding]:
        """Poll while another process builds this key; None on stale/timeout."""
        deadline = time.monotonic() + self.build_lock_timeout
        path = self._lock_path_for(spec)
        while time.monotonic() < deadline:
            if not path.exists():
                return self.get(spec)
            if not self._lock_holder_alive(spec):
                try:  # steal the dead process's lock
                    path.unlink()
                except OSError:
                    pass
                return self.get(spec)
            time.sleep(0.05)
        self.metrics.incr("build_lock_timeouts")
        return None

    def get_or_build(self, spec: EmbeddingSpec) -> AnyEmbedding:
        """Serve from cache, else build + verify + admit — exactly once.

        Concurrent callers of the same key are single-flighted twice: an
        in-process keyed lock serializes threads, and an on-disk pid lock
        file makes a second *process* wait for the first admit instead of
        burning a duplicate multi-second build (``builds`` counts only
        real builds, so two racing processes observe one build total).
        A crashed builder's lock is detected dead and stolen; an
        unresponsive one is abandoned after ``build_lock_timeout``.

        Verification goes through the structured report: a failed invariant
        counts under ``verify_failures`` before raising, and a passing
        report's measured quantities land in per-kind gauges
        (``embedding_width{kind=...}`` etc.) so ``stats()`` shows what the
        cache actually holds.
        """
        emb = self.get(spec)
        if emb is not None:
            return emb
        with self._key_lock(spec.cache_key()):
            emb = self.get(spec)  # a sibling thread may have just admitted
            if emb is not None:
                return emb
            while not self._acquire_build_lock(spec):
                emb = self._await_other_build(spec)
                if emb is not None:
                    return emb
                if self._acquire_build_lock(spec):
                    break  # stale lock stolen (or builder vanished): build here
            try:
                return self._build_and_admit(spec)
            finally:
                self._release_build_lock(spec)

    def _build_and_admit(self, spec: EmbeddingSpec) -> AnyEmbedding:
        with profile_span("registry.build", kind=spec.kind):
            with self.metrics.time("build"):
                emb = build_spec(spec)
        with self.metrics.time("verify"):
            report = emb.verify(strict=False)
        if not report.ok:
            self.metrics.incr("verify_failures")
            report.raise_if_failed()
        for quantity in ("width", "load", "dilation", "congestion"):
            if quantity in report.metrics:
                self.metrics.gauge(
                    f"embedding_{quantity}", kind=spec.kind
                ).set(report.metrics[quantity])
        self.metrics.incr("builds")
        self.put(spec, emb)
        return emb

    def __contains__(self, spec: EmbeddingSpec) -> bool:
        key = spec.cache_key()
        with self._lock:
            if key in self._memory or key in self._warm:
                return True
        return self.path_for(spec).exists() or self.legacy_path_for(spec).exists()

    # -- maintenance -------------------------------------------------------------

    def _store_paths(self) -> List[Path]:
        if not self.cache_dir.exists():
            return []
        return sorted(self.cache_dir.glob(f"*/*{STORE_SUFFIX}"))

    def _legacy_paths(self) -> List[Path]:
        if not self.cache_dir.exists():
            return []
        return sorted(self.cache_dir.glob("*.json"))

    def ls(self) -> List[Dict[str, Any]]:
        """Metadata of every readable on-disk artifact (unreadable skipped)."""
        rows = []
        for path in self._store_paths():
            try:
                header = read_store_header(path)
                rows.append(
                    {
                        "key": header.get("spec_key", path.stem)[:12],
                        "construction": header.get("construction", "?"),
                        "package_version": header.get("package_version", "?"),
                        "tier": "store",
                        "bytes": path.stat().st_size,
                        "file": f"{path.parent.name}/{path.name}",
                    }
                )
            except Exception:
                rows.append(
                    {
                        "key": path.stem[:12],
                        "construction": "<unreadable>",
                        "package_version": "?",
                        "tier": "store",
                        "bytes": path.stat().st_size,
                        "file": f"{path.parent.name}/{path.name}",
                    }
                )
        for path in self._legacy_paths():
            try:
                artifact = json.loads(path.read_text())
                rows.append(
                    {
                        "key": artifact.get("key", path.stem)[:12],
                        "construction": artifact.get("construction", "?"),
                        "package_version": artifact.get("package_version", "?"),
                        "tier": "legacy-json",
                        "bytes": path.stat().st_size,
                        "file": path.name,
                    }
                )
            except Exception:
                rows.append(
                    {
                        "key": path.stem[:12],
                        "construction": "<unreadable>",
                        "package_version": "?",
                        "tier": "legacy-json",
                        "bytes": path.stat().st_size,
                        "file": path.name,
                    }
                )
        return rows

    def clear(self) -> int:
        """Drop every tier; returns the number of disk artifacts removed.

        Also sweeps the orphans no artifact listing ever showed: ``.tmp``
        files from writers that crashed between write and rename, and
        ``.lock`` files from builders that died mid-build.
        """
        with self._lock:
            self._memory.clear()
            warm = list(self._warm.values())
            self._warm.clear()
            self._cold_opens.clear()
        for view in warm:
            view.close()
        removed = 0
        for path in self._store_paths() + self._legacy_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if self.cache_dir.exists():
            for pattern in ("*.tmp", "*/*.tmp", "*.lock", "*/*.lock"):
                for orphan in self.cache_dir.glob(pattern):
                    try:
                        orphan.unlink()
                        self.metrics.incr("orphans_swept")
                    except OSError:
                        pass
        return removed

    def migrate(self, *, verify_payload: bool = False) -> Dict[str, int]:
        """Upgrade legacy JSON artifacts to binary store files in place.

        Each readable legacy artifact is checksum-validated, decoded,
        CSR-exported and rewritten as ``<kind>/<key>.rpstore``; the JSON
        file is removed only after its replacement landed.  Artifacts
        that already have a store file are skipped; unreadable or
        tampered ones are left in place and counted under ``failed``
        (a migration must never destroy what it cannot replace).
        ``verify_payload=True`` re-hashes each freshly written payload.
        """
        out = {"migrated": 0, "skipped": 0, "failed": 0}
        for path in self._legacy_paths():
            try:
                artifact = json.loads(path.read_text())
                key = artifact.get("key", path.stem)
                kind = artifact.get("spec", {}).get("kind", "")
                params = artifact.get("spec", {}).get("params", {})
                if not kind:
                    raise ValueError("artifact names no construction kind")
                dest = self.cache_dir / kind / f"{key}{STORE_SUFFIX}"
                if dest.exists():
                    out["skipped"] += 1
                    continue
                text = path.read_text()
                emb = _decode_artifact_text(text, key)
                csr = embedding_csr(emb)
                write_store(
                    dest,
                    csr,
                    text,
                    spec_key=key,
                    kind=kind,
                    params=params,
                    package_version=artifact.get("package_version", ""),
                    construction=artifact.get("construction", ""),
                    artifact_version=ARTIFACT_VERSION,
                )
                if verify_payload:
                    view = open_store(dest, payload_verify="eager")
                    view.close()
                path.unlink()
                out["migrated"] += 1
                self.metrics.incr("artifacts_migrated")
            except Exception:
                out["failed"] += 1
                self.metrics.incr("migrate_failures")
        return out

    def stats(self) -> dict:
        """Metrics snapshot plus tier occupancy."""
        snap = self.metrics.snapshot()
        with self._lock:
            snap["memory_entries"] = len(self._memory)
            snap["warm_entries"] = len(self._warm)
        snap["disk_entries"] = len(self._store_paths()) + len(self._legacy_paths())
        snap["cache_dir"] = str(self.cache_dir)
        return snap
