"""Content-addressed embedding registry: in-memory LRU over a disk tier.

Constructions dominate runtime (DESIGN.md profiling) and are fully
deterministic, so the service memoizes them.  An artifact is keyed by
:meth:`EmbeddingSpec.cache_key` — ``(guest kind, params, construction
version)`` hashed to a stable content address — and stored as one JSON
file built on :mod:`repro.core.serialize`.

Safety model: an artifact is only written after the embedding verified at
build time, and the file carries a SHA-256 checksum of the exact payload
text that was verified.  On load the registry checks artifact version,
key, package version and checksum; any mismatch (truncation, corruption,
stale version) is treated as a cache *miss* — the bad file is removed and
the caller rebuilds + reverifies.  The registry therefore never serves an
unverified artifact, and never crashes on a damaged cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.embedding import Embedding, MultiCopyEmbedding, MultiPathEmbedding
from repro.core.serialize import from_json, to_json
from repro.hypercube.graph import Hypercube
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import profile_span
from repro.service.specs import EmbeddingSpec, build_spec

__all__ = [
    "EmbeddingRegistry",
    "encode_embedding",
    "decode_embedding",
    "default_cache_dir",
    "ARTIFACT_VERSION",
]

ARTIFACT_VERSION = 1

AnyEmbedding = Union[Embedding, MultiPathEmbedding, MultiCopyEmbedding]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/embeddings``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "embeddings"


def encode_embedding(emb: AnyEmbedding, construction: str = "") -> str:
    """Embedding -> payload text.  Multi-copy wraps its copies' payloads."""
    if isinstance(emb, MultiCopyEmbedding):
        return json.dumps(
            {
                "style": "multicopy",
                "host_dim": emb.host.n,
                "name": emb.name,
                "copy_load_allowed": emb.copy_load_allowed,
                "copies": [
                    json.loads(to_json(c, construction=construction))
                    for c in emb.copies
                ],
            }
        )
    return to_json(emb, construction=construction)


def decode_embedding(text: str, verify: bool = True) -> AnyEmbedding:
    """Payload text -> embedding (inverse of :func:`encode_embedding`)."""
    payload = json.loads(text)
    if payload.get("style") != "multicopy":
        return from_json(text, verify=verify)
    copies = [
        from_json(json.dumps(c), verify=False) for c in payload["copies"]
    ]
    if not copies:
        raise ValueError("multicopy payload has no copies")
    emb = MultiCopyEmbedding(
        Hypercube(payload["host_dim"]),
        copies[0].guest,
        copies,
        name=payload.get("name", ""),
        copy_load_allowed=payload.get("copy_load_allowed", 1),
    )
    if verify:
        emb.verify()
    return emb


def _checksum(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def _package_version() -> str:
    from repro import __version__

    return __version__


def make_artifact(spec: EmbeddingSpec, emb: AnyEmbedding) -> str:
    """Wrap a *verified* embedding as registry artifact text."""
    payload = encode_embedding(emb, construction=spec.describe())
    return json.dumps(
        {
            "artifact_version": ARTIFACT_VERSION,
            "key": spec.cache_key(),
            "spec": {"kind": spec.kind, "params": spec.param_dict()},
            "package_version": _package_version(),
            "construction": spec.describe(),
            "checksum": _checksum(payload),
            "payload": payload,
        }
    )


class EmbeddingRegistry:
    """Two-tier (memory LRU + disk) cache of verified embeddings."""

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        memory_capacity: int = 32,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if memory_capacity < 0:
            raise ValueError("memory_capacity must be >= 0")
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.memory_capacity = memory_capacity
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._lock = threading.Lock()
        self._memory: "OrderedDict[str, AnyEmbedding]" = OrderedDict()

    # -- paths ---------------------------------------------------------------

    def path_for(self, spec: EmbeddingSpec) -> Path:
        return self.cache_dir / f"{spec.cache_key()}.json"

    # -- memory tier -----------------------------------------------------------

    def _memory_get(self, key: str) -> Optional[AnyEmbedding]:
        with self._lock:
            emb = self._memory.get(key)
            if emb is not None:
                self._memory.move_to_end(key)
            return emb

    def _memory_put(self, key: str, emb: AnyEmbedding) -> None:
        if self.memory_capacity == 0:
            return
        with self._lock:
            self._memory[key] = emb
            self._memory.move_to_end(key)
            while len(self._memory) > self.memory_capacity:
                self._memory.popitem(last=False)
                self.metrics.incr("memory_evictions")

    # -- disk tier ---------------------------------------------------------------

    def _disk_load(self, spec: EmbeddingSpec) -> Optional[AnyEmbedding]:
        path = self.path_for(spec)
        if not path.exists():
            return None
        try:
            artifact = json.loads(path.read_text())
            if artifact.get("artifact_version") != ARTIFACT_VERSION:
                raise ValueError("artifact version mismatch")
            if artifact.get("key") != spec.cache_key():
                raise ValueError("artifact key mismatch")
            if artifact.get("package_version") != _package_version():
                raise ValueError("package version mismatch")
            payload = artifact["payload"]
            if artifact.get("checksum") != _checksum(payload):
                raise ValueError("payload checksum mismatch")
            # the checksum certifies these are the exact bytes written
            # after the build-time verify, so decoding skips the re-check
            return decode_embedding(payload, verify=False)
        except Exception:
            # damaged / stale / truncated: recover by rebuilding, not crashing
            self.metrics.incr("disk_corrupt")
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # -- public API ------------------------------------------------------------

    def get(self, spec: EmbeddingSpec) -> Optional[AnyEmbedding]:
        """Cached embedding for ``spec``, or ``None`` on a full miss."""
        key = spec.cache_key()
        emb = self._memory_get(key)
        if emb is not None:
            self.metrics.incr("memory_hits")
            return emb
        self.metrics.incr("memory_misses")
        with self.metrics.time("disk_load"):
            emb = self._disk_load(spec)
        if emb is not None:
            self.metrics.incr("disk_hits")
            self._memory_put(key, emb)
            return emb
        self.metrics.incr("disk_misses")
        return None

    def put(self, spec: EmbeddingSpec, emb: AnyEmbedding) -> AnyEmbedding:
        """Admit a *verified* embedding: write the artifact atomically."""
        return self.admit_artifact(spec, make_artifact(spec, emb), emb)

    def admit_artifact(
        self,
        spec: EmbeddingSpec,
        artifact_text: str,
        emb: Optional[AnyEmbedding] = None,
    ) -> AnyEmbedding:
        """Write pre-encoded artifact text (engine workers encode remotely)."""
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(artifact_text)
        os.replace(tmp, path)
        if emb is None:
            emb = decode_embedding(
                json.loads(artifact_text)["payload"], verify=False
            )
        self._memory_put(spec.cache_key(), emb)
        self.metrics.incr("artifacts_written")
        return emb

    def get_or_build(self, spec: EmbeddingSpec) -> AnyEmbedding:
        """Serve from cache, else build + verify + admit.

        Verification goes through the structured report: a failed invariant
        counts under ``verify_failures`` before raising, and a passing
        report's measured quantities land in per-kind gauges
        (``embedding_width{kind=...}`` etc.) so ``stats()`` shows what the
        cache actually holds.
        """
        emb = self.get(spec)
        if emb is not None:
            return emb
        with profile_span("registry.build", kind=spec.kind):
            with self.metrics.time("build"):
                emb = build_spec(spec)
        with self.metrics.time("verify"):
            report = emb.verify(strict=False)
        if not report.ok:
            self.metrics.incr("verify_failures")
            report.raise_if_failed()
        for quantity in ("width", "load", "dilation", "congestion"):
            if quantity in report.metrics:
                self.metrics.gauge(
                    f"embedding_{quantity}", kind=spec.kind
                ).set(report.metrics[quantity])
        self.metrics.incr("builds")
        self.put(spec, emb)
        return emb

    def __contains__(self, spec: EmbeddingSpec) -> bool:
        key = spec.cache_key()
        with self._lock:
            if key in self._memory:
                return True
        return self.path_for(spec).exists()

    def ls(self) -> List[Dict[str, Any]]:
        """Metadata of every readable on-disk artifact (unreadable skipped)."""
        if not self.cache_dir.exists():
            return []
        rows = []
        for path in sorted(self.cache_dir.glob("*.json")):
            try:
                artifact = json.loads(path.read_text())
                rows.append(
                    {
                        "key": artifact.get("key", path.stem)[:12],
                        "construction": artifact.get("construction", "?"),
                        "package_version": artifact.get("package_version", "?"),
                        "bytes": path.stat().st_size,
                        "file": path.name,
                    }
                )
            except Exception:
                rows.append(
                    {
                        "key": path.stem[:12],
                        "construction": "<unreadable>",
                        "package_version": "?",
                        "bytes": path.stat().st_size,
                        "file": path.name,
                    }
                )
        return rows

    def clear(self) -> int:
        """Drop both tiers; returns the number of disk artifacts removed."""
        with self._lock:
            self._memory.clear()
        removed = 0
        if self.cache_dir.exists():
            for path in self.cache_dir.glob("*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def stats(self) -> dict:
        """Metrics snapshot plus tier occupancy."""
        snap = self.metrics.snapshot()
        with self._lock:
            snap["memory_entries"] = len(self._memory)
        snap["disk_entries"] = (
            len(list(self.cache_dir.glob("*.json")))
            if self.cache_dir.exists()
            else 0
        )
        snap["cache_dir"] = str(self.cache_dir)
        return snap
