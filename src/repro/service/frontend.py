"""Batching front-end + open-loop load harness for the routing service.

The serving loop that turns the vectorized :meth:`route_batch` kernel into
a request/response system: callers :meth:`~BatchingFrontend.submit`
individual :class:`RouteRequest`\\ s and get futures; a drainer thread
coalesces whatever arrived within ``max_wait_s`` (up to ``max_batch``)
into one ``route_batch`` call and fans the responses back out.  Under
load the batches grow toward ``max_batch`` and per-request cost collapses
to the gather kernel's amortized cost; when idle, a lone request pays at
most ``max_wait_s`` of batching delay.

:func:`serve` is the asyncio face over the same engine (futures bridged
with ``asyncio.wrap_future``); :func:`open_loop_load` is the measurement
harness — Poisson arrivals at a fixed offered rate that *never* wait for
completions (open loop, so the service can actually fall behind), with
sustained throughput and latency percentiles in the returned
:class:`LoadReport` and every sample mirrored into the service's metrics
registry (``serve_latency`` histogram, ``serve_batch_size`` per batch).
"""

from __future__ import annotations

import asyncio
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro._compat import resolve_rng
from repro.service.specs import EmbeddingSpec, RouteRequest, RouteResponse

__all__ = ["BatchingFrontend", "LoadReport", "open_loop_load", "serve"]

RequestLike = Union[RouteRequest, Tuple[Any, Any]]


class BatchingFrontend:
    """Micro-batching request front-end over one service + spec.

    Thread-safe: any number of producer threads may ``submit``; one
    drainer thread owns the ``route_batch`` calls.  A failed batch is
    retried request-by-request so one bad edge rejects only its own
    future, not its batch neighbours'.
    """

    def __init__(
        self,
        service: Any,
        spec: EmbeddingSpec,
        max_batch: int = 1024,
        max_wait_s: float = 0.002,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.service = service
        self.spec = spec
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._queue: "queue.SimpleQueue[Optional[Tuple[RouteRequest, Future]]]" = (
            queue.SimpleQueue()
        )
        self._lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._batches = 0
        self._served = 0
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "BatchingFrontend":
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._stopping = False
            thread = threading.Thread(
                target=self._drain_loop, name="repro-frontend", daemon=True
            )
            self._thread = thread
        thread.start()
        # warm the shard outside the hot loop so the first batch's latency
        # measures routing, not construction
        self.service.shard_for(self.spec)
        return self

    def stop(self) -> None:
        with self._lock:
            if not self._started or self._stopping:
                return
            self._stopping = True
            thread = self._thread
        self._queue.put(None)  # wake the drainer
        if thread is not None:
            thread.join()
        with self._lock:
            self._started = False
            self._thread = None

    def __enter__(self) -> "BatchingFrontend":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- producer side -------------------------------------------------------

    def submit(self, request: RequestLike) -> "Future[RouteResponse]":
        """Enqueue one request; the future resolves to its RouteResponse."""
        with self._lock:
            if not self._started or self._stopping:
                raise RuntimeError("frontend is not running; use it as a context manager")
        if not isinstance(request, RouteRequest):
            request = RouteRequest(request)
        future: "Future[RouteResponse]" = Future()
        self._queue.put((request, future))
        return future

    # -- drainer -------------------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                with self._lock:
                    if self._stopping:
                        return
                continue
            if item is None:
                self._flush_remaining()
                return
            batch = [item]
            deadline = time.perf_counter() + self.max_wait_s
            while len(batch) < self.max_batch:
                budget = deadline - time.perf_counter()
                try:
                    # the deadline bounds how long we *wait*, not how much
                    # we coalesce: an exhausted budget (incl. max_wait_s=0)
                    # still drains whatever is already queued, so a zero
                    # deadline means "flush immediately with everything
                    # that has arrived", not "batches of one"
                    nxt = (
                        self._queue.get(timeout=budget)
                        if budget > 0
                        else self._queue.get_nowait()
                    )
                except queue.Empty:
                    break
                if nxt is None:
                    self._resolve(batch)
                    self._flush_remaining()
                    return
                batch.append(nxt)
            self._resolve(batch)

    def _flush_remaining(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not None:
                self._resolve([item])

    def _resolve(self, batch: List[Tuple[RouteRequest, Future]]) -> None:
        requests = [req for req, _ in batch]
        try:
            result = self.service.route_batch(self.spec, requests)
        except Exception:
            # retry one-by-one: only the offending request gets the error
            for req, future in batch:
                try:
                    single = self.service.route_batch(self.spec, [req])
                except Exception as err:
                    future.set_exception(err)
                else:
                    future.set_result(single[0])
        else:
            for i, (_, future) in enumerate(batch):
                future.set_result(result[i])
        with self._lock:
            self._batches += 1
            self._served += len(batch)
        self.service.metrics.histogram("serve_batch_size").observe(len(batch))

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            batches, served = self._batches, self._served
        return {
            "batches": batches,
            "served": served,
            "mean_batch": served / batches if batches else 0.0,
        }


async def serve(
    service: Any,
    spec: EmbeddingSpec,
    requests: Sequence[RequestLike],
    max_batch: int = 1024,
    max_wait_s: float = 0.002,
) -> List[RouteResponse]:
    """Resolve ``requests`` through a batching front-end, asyncio-style.

    Submissions bridge to the drainer thread via ``asyncio.wrap_future``,
    so an event loop can multiplex thousands of outstanding routing
    requests without blocking; responses come back in request order.
    """
    loop = asyncio.get_running_loop()
    with BatchingFrontend(service, spec, max_batch, max_wait_s) as frontend:
        futures = [
            asyncio.wrap_future(frontend.submit(r), loop=loop) for r in requests
        ]
        return list(await asyncio.gather(*futures))


@dataclass
class LoadReport:
    """What an open-loop run offered, completed, and cost in latency."""

    offered: int
    completed: int
    errors: int
    duration_s: float
    offered_rate: float  # requests/s the harness tried to inject
    sustained_rps: float  # completions/s actually achieved
    p50_ms: float
    p99_ms: float
    max_ms: float
    mean_batch: float

    def describe(self) -> str:
        return (
            f"{self.completed}/{self.offered} ok @ {self.sustained_rps:,.0f} req/s "
            f"(offered {self.offered_rate:,.0f}/s), "
            f"p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms, "
            f"mean batch {self.mean_batch:.0f}"
        )


def _percentile(sorted_ms: List[float], q: float) -> float:
    if not sorted_ms:
        return 0.0
    idx = min(len(sorted_ms) - 1, max(0, round(q * (len(sorted_ms) - 1))))
    return sorted_ms[int(idx)]


def open_loop_load(
    service: Any,
    spec: EmbeddingSpec,
    rate: float,
    total: int,
    seed: Optional[int] = None,
    rng: Optional[Any] = None,
    max_batch: int = 1024,
    max_wait_s: float = 0.002,
) -> LoadReport:
    """Offer ``total`` Poisson arrivals at ``rate`` req/s, never waiting.

    Arrivals are injected on schedule whether or not earlier requests have
    completed — the open-loop discipline that exposes saturation instead
    of hiding it behind client backpressure.  Guest edges are drawn
    uniformly (both orientations) from the embedding's shard, with the
    deterministic :func:`repro._compat.resolve_rng` stream discipline.
    Per-request latency lands in the service's ``serve_latency`` histogram
    and in the report's percentiles.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if total < 1:
        raise ValueError(f"total must be >= 1, got {total}")
    stream = resolve_rng(seed, rng, default_seed=0)
    edges = list(service.shard_for(spec).csr.edges)
    picks = []
    for _ in range(total):
        u, v = stream.choice(edges)
        picks.append((v, u) if stream.random() < 0.5 else (u, v))
    gaps = [stream.expovariate(rate) for _ in range(total)]

    done: List[Tuple[float, Optional[BaseException]]] = []
    done_lock = threading.Lock()
    metrics = service.metrics

    with BatchingFrontend(service, spec, max_batch, max_wait_s) as frontend:
        t0 = time.perf_counter()
        next_at = t0
        futures = []
        for edge, gap in zip(picks, gaps):
            next_at += gap
            delay = next_at - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            sent = time.perf_counter()
            future = frontend.submit(edge)

            def record(f: Future, sent: float = sent) -> None:
                elapsed = time.perf_counter() - sent
                metrics.observe("serve_latency", elapsed)
                with done_lock:
                    done.append((elapsed, f.exception()))

            future.add_done_callback(record)
            futures.append(future)
        for future in futures:
            future.exception()  # wait; errors are tallied, not raised
        duration = time.perf_counter() - t0
        stats = frontend.stats()

    latencies_ms = sorted(elapsed * 1e3 for elapsed, _ in done)
    errors = sum(1 for _, err in done if err is not None)
    completed = len(done) - errors
    return LoadReport(
        offered=total,
        completed=completed,
        errors=errors,
        duration_s=duration,
        offered_rate=rate,
        sustained_rps=completed / duration if duration > 0 else 0.0,
        p50_ms=_percentile(latencies_ms, 0.50),
        p99_ms=_percentile(latencies_ms, 0.99),
        max_ms=latencies_ms[-1] if latencies_ms else 0.0,
        mean_batch=stats["mean_batch"],
    )
