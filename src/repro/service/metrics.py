"""Lightweight service observability: counters and latency timers.

One :class:`ServiceMetrics` instance is threaded through the registry,
engine and facade; ``snapshot()`` returns a plain dict the CLI prints and
tests assert on.  Thread-safe (the engine admits artifacts from executor
callbacks), dependency-free, and cheap enough to leave on everywhere.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict

__all__ = ["ServiceMetrics"]


class _Timer:
    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)


class ServiceMetrics:
    """Named monotonic counters plus named latency distributions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, _Timer] = {}

    # -- counters ------------------------------------------------------------

    def incr(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def count(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- timers --------------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        with self._lock:
            self._timers.setdefault(name, _Timer()).observe(seconds)

    @contextmanager
    def time(self, name: str):
        """Context manager recording the wall time of its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Plain-dict view of every counter and timer (seconds)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "timers": {
                    name: {
                        "count": t.count,
                        "total_s": round(t.total, 6),
                        "mean_s": round(t.total / t.count, 6) if t.count else 0.0,
                        "min_s": round(t.min, 6) if t.count else 0.0,
                        "max_s": round(t.max, 6),
                    }
                    for name, t in self._timers.items()
                },
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._timers.clear()
