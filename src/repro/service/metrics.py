"""Deprecated shim: ``ServiceMetrics`` is now ``repro.obs.MetricsRegistry``.

The service layer's counters and timers migrated to the package-wide
instrumentation subsystem (:mod:`repro.obs`).  :class:`ServiceMetrics`
remains importable for existing code: it *is* a
:class:`~repro.obs.metrics.MetricsRegistry` (same ``incr`` / ``count`` /
``observe`` / ``time`` API, which the registry kept as its legacy sugar)
that warns :class:`~repro._compat.ReproDeprecationWarning` on
construction and pins ``snapshot()`` to the historical two-key
``{"counters", "timers"}`` shape.  New code should instantiate
``MetricsRegistry`` directly and read the richer four-key snapshot.
"""

from __future__ import annotations

from repro._compat import warn_deprecated
from repro.obs.metrics import MetricsRegistry

__all__ = ["ServiceMetrics"]


class ServiceMetrics(MetricsRegistry):
    """Deprecated alias of :class:`repro.obs.MetricsRegistry`.

    .. deprecated:: use ``repro.obs.MetricsRegistry``.
    """

    def __init__(self) -> None:
        warn_deprecated(
            "ServiceMetrics is deprecated; use repro.obs.MetricsRegistry"
        )
        super().__init__()

    def snapshot(self) -> dict:
        """The historical two-key snapshot: counters and timers only."""
        full = super().snapshot()
        return {"counters": full["counters"], "timers": full["timers"]}
