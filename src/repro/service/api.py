"""`RoutingService` — the request-serving facade over the paper's machinery.

One object answers the service questions:

* :meth:`RoutingService.get_embedding` — a verified construction, memoized
  through the two-tier registry;
* :meth:`RoutingService.route_batch` — **the** routing entry point since
  the batch API redesign: thousands of :class:`RouteRequest`\\ s resolved
  per call by numpy gathers against the embedding's shared-memory CSR
  shard (see :mod:`repro.service.shards`), returned as a lazy
  :class:`BatchRouteResult`;
* :meth:`RoutingService.route` / :meth:`RoutingService.route_fault_tolerant`
  — thin single-item wrappers over the batch path; the latter adds
  IDA-dispersed delivery that fails over to the surviving path subset
  under a :class:`repro.fault.faults.FaultModel`, exactly the Section 1
  application.

The pre-batch positional forms — ``route(spec, (u, v))`` returning a bare
path tuple, ``route_fault_tolerant(spec, (u, v), message, faults=...)``,
and the ``FaultSet`` alias — still work behind
:class:`~repro._compat.ReproDeprecationWarning` shims; CI's ``-W error``
job keeps package code off them.

Everything is observable via :meth:`RoutingService.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple, Union

from repro._compat import warn_deprecated
from repro.core.embedding import MultiCopyEmbedding, MultiPathEmbedding
from repro.core.fast_verify import embedding_csr
from repro.fault.faults import FaultModel
from repro.fault.ida import disperse, reconstruct
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import profile_span
from repro.service.engine import BuildEngine
from repro.service.registry import EmbeddingRegistry
from repro.service.shards import ShardManager, ShardView
from repro.service.specs import (
    BatchRouteResult,
    EmbeddingSpec,
    RouteRequest,
    RouteResponse,
)

__all__ = ["RoutingService", "DeliveryOutcome", "disjoint_paths"]

_DEFAULT_MESSAGE = b"routing multiple paths in hypercubes"


def __getattr__(name: str) -> Any:
    if name == "FaultSet":
        warn_deprecated(
            "repro.service.FaultSet is deprecated; use "
            "repro.fault.faults.FaultModel (it is the same class)"
        )
        return FaultModel
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class DeliveryOutcome:
    """Result of one fault-tolerant delivery over the disjoint paths."""

    delivered: bool
    message: Optional[bytes]
    width: int
    alive_paths: Tuple[int, ...]  # indices of paths untouched by faults
    failed_paths: Tuple[int, ...]
    pieces_needed: int

    @property
    def overhead(self) -> float:
        """IDA bandwidth overhead ``w/m`` paid for this tolerance level."""
        return self.width / self.pieces_needed if self.pieces_needed else 0.0


def disjoint_paths(emb, guest_edge) -> Tuple[Tuple[int, ...], ...]:
    """The host paths ``emb`` provides for ``guest_edge``.

    Width-w embeddings return their w edge-disjoint paths; classical
    embeddings return their single path; multi-copy embeddings return one
    path per copy (k alternative routes).  A guest edge given against the
    stored orientation resolves to the reversed paths — the hypercube is
    directed, and the reverse of edge-disjoint paths is edge-disjoint.
    Copies of a :class:`MultiCopyEmbedding` are looked up independently:
    a copy that stores only the reverse orientation contributes its
    reversed paths, and a copy that stores neither orientation is skipped
    — the lookup fails only when *no* copy knows the edge.
    """
    u, v = guest_edge
    if isinstance(emb, MultiCopyEmbedding):
        out: List[Tuple[int, ...]] = []
        found = False
        for copy in emb.copies:
            try:
                paths = disjoint_paths(copy, (u, v))
            except KeyError:
                continue
            found = True
            out.extend(paths)
        if not found:
            sample = next(
                (e for copy in emb.copies for e in copy.edge_paths), None
            )
            raise KeyError(
                f"guest edge {guest_edge!r} not in embedding "
                f"(edges look like {sample!r})"
            )
        return tuple(out)
    paths = emb.edge_paths.get((u, v))
    if paths is None:
        reverse = emb.edge_paths.get((v, u))
        if reverse is None:
            sample = next(iter(emb.edge_paths), None)
            raise KeyError(
                f"guest edge {guest_edge!r} not in embedding "
                f"(edges look like {sample!r})"
            )
        if isinstance(emb, MultiPathEmbedding):
            return tuple(tuple(reversed(p)) for p in reverse)
        return (tuple(reversed(reverse)),)
    if isinstance(emb, MultiPathEmbedding):
        return tuple(tuple(p) for p in paths)
    return (tuple(paths),)


class RoutingService:
    """Facade: memoized embeddings + batch routing + fault tolerance."""

    def __init__(
        self,
        registry: Optional[EmbeddingRegistry] = None,
        engine: Optional[BuildEngine] = None,
        metrics: Optional[MetricsRegistry] = None,
        shards: Optional[ShardManager] = None,
    ):
        if metrics is None:
            metrics = registry.metrics if registry is not None else MetricsRegistry()
        self.metrics = metrics
        self.registry = registry if registry is not None else EmbeddingRegistry(
            metrics=metrics
        )
        self.engine = engine if engine is not None else BuildEngine(
            self.registry, metrics=self.metrics
        )
        self.shards = shards if shards is not None else ShardManager(
            metrics=self.metrics
        )

    # -- embeddings ------------------------------------------------------------

    def get_embedding(self, spec: EmbeddingSpec):
        """Verified embedding for ``spec`` (cache-aside through the registry)."""
        with self.metrics.time("get_embedding"):
            return self.registry.get_or_build(spec)

    def warm(self, specs: Iterable[EmbeddingSpec], parallel: bool = True) -> int:
        """Prefetch a batch of specs through the concurrent engine."""
        return self.engine.warm(specs, parallel=parallel)

    def shard_for(self, spec: EmbeddingSpec) -> ShardView:
        """The (published-on-first-use) CSR shard serving ``spec``.

        Resolution order is the cold-start story: an already-published
        shard, else the registry's memmapped store artifact served
        straight off the file (O(ms), no embedding object, no
        shared-memory copy), else build + verify + publish to shared
        memory.  ``.info.name`` is what worker processes pass to
        :meth:`repro.service.shards.ShardManager.attach` — a segment
        name for ``"shm"`` shards, the store path for ``"file"`` ones.
        """
        key = spec.cache_key()
        existing = self.shards.get(key)
        if existing is not None:
            self.metrics.incr("shard_hits")
            return existing
        store = self.registry.get_store(spec)
        if store is not None:
            self.metrics.incr("shard_misses")
            return self.shards.publish_mapped(
                key,
                store.csr,
                name=store.info.path,
                nbytes=store.info.nbytes,
                sha256=store.info.sha256,
            )
        return self.shards.get_or_publish(
            key, lambda: embedding_csr(self.get_embedding(spec))
        )

    # -- routing -------------------------------------------------------------------

    def route_batch(
        self,
        spec: EmbeddingSpec,
        requests: Sequence[Union[RouteRequest, Tuple[Any, Any]]],
    ) -> BatchRouteResult:
        """Resolve a whole batch of requests in one vectorized pass.

        ``requests`` may mix :class:`RouteRequest` objects and bare
        ``(u, v)`` guest edges (a bare edge is just a request with default
        delivery knobs — no deprecation involved).  The answer stays in
        flat CSR arrays; index the returned :class:`BatchRouteResult` to
        materialize per-request paths, which are field-identical to what
        per-call :meth:`route` returns for the same edge.
        """
        reqs = [
            r if isinstance(r, RouteRequest) else RouteRequest(r) for r in requests
        ]
        with profile_span("service.route_batch", kind=spec.kind):
            shard = self.shard_for(spec)
            with self.metrics.time("route_batch"):
                nodes, path_offsets, request_offsets = shard.csr.take(
                    [r.guest_edge for r in reqs]
                )
        self.metrics.histogram("route_batch_size").observe(len(reqs))
        self.metrics.incr("routes", len(reqs))
        return BatchRouteResult(reqs, nodes, path_offsets, request_offsets)

    def route(
        self,
        spec: EmbeddingSpec,
        request: Union[RouteRequest, Tuple[Any, Any]],
    ):
        """Single-request wrapper over :meth:`route_batch`.

        Pass a :class:`RouteRequest` and get a :class:`RouteResponse`.
        The pre-redesign form — a bare guest-edge tuple in, a bare tuple
        of paths out — still works behind a deprecation warning.
        """
        if not isinstance(request, RouteRequest):
            warn_deprecated(
                "route(spec, (u, v)) returning a bare path tuple is "
                "deprecated; pass RouteRequest((u, v)) and read .paths off "
                "the RouteResponse (or use route_batch for many edges)"
            )
            return self.route_batch(spec, [RouteRequest(request)]).paths(0)
        with self.metrics.time("route"):
            return self.route_batch(spec, [request])[0]

    def route_fault_tolerant(
        self,
        spec: EmbeddingSpec,
        request: Union[RouteRequest, Tuple[Any, Any]],
        message: Optional[bytes] = None,
        faults: Optional[FaultModel] = None,
        pieces_needed: Optional[int] = None,
    ) -> DeliveryOutcome:
        """Deliver a message across the disjoint paths despite faults.

        The message is IDA-dispersed into one piece per path; any
        ``pieces_needed`` surviving paths reconstruct it, so delivery
        tolerates ``w - pieces_needed`` failed paths.  The default
        ``pieces_needed=1`` (full dispersal redundancy, overhead ``w``)
        survives up to ``w - 1`` failures — raise it to trade bandwidth
        for tolerance, per the paper's Section 1 trade-off.

        Delivery parameters ride on the :class:`RouteRequest`; the old
        positional/keyword form is shimmed with a deprecation warning.
        """
        if not isinstance(request, RouteRequest):
            warn_deprecated(
                "route_fault_tolerant(spec, (u, v), message, faults=...) is "
                "deprecated; put message/faults/pieces_needed on a "
                "RouteRequest"
            )
            request = RouteRequest(
                request,
                message=message,
                faults=faults,
                pieces_needed=pieces_needed,
            )
        payload = request.message if request.message is not None else _DEFAULT_MESSAGE
        response: RouteResponse = self.route_batch(spec, [request])[0]
        paths = response.paths
        w = len(paths)
        m = 1 if request.pieces_needed is None else request.pieces_needed
        if not 1 <= m <= w:
            raise ValueError(f"pieces_needed must be in [1, {w}], got {m}")
        model = request.faults
        alive = tuple(
            i
            for i, p in enumerate(paths)
            if model is None or model.path_alive(p)
        )
        failed = tuple(i for i in range(w) if i not in alive)
        pieces = disperse(payload, w, m)
        survivors = [pieces[i] for i in alive]
        if len(survivors) >= m:
            recovered = reconstruct(survivors, w, m)
            if recovered != payload:
                raise AssertionError("IDA reconstruction mismatch")
            self.metrics.incr("deliveries")
            return DeliveryOutcome(True, recovered, w, alive, failed, m)
        self.metrics.incr("delivery_failures")
        return DeliveryOutcome(False, None, w, alive, failed, m)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """Counters, timers and tier occupancy for this service instance."""
        return self.registry.stats()

    def close(self) -> None:
        """Unlink the published shards (the registry/engine stay usable)."""
        self.shards.close()
