"""`RoutingService` — the request-serving facade over the paper's machinery.

One object answers the three service questions:

* :meth:`RoutingService.get_embedding` — a verified construction, memoized
  through the two-tier registry;
* :meth:`RoutingService.route` — the ``w`` edge-disjoint host paths an
  embedding provides for a guest edge (the paper's Section 2/7 payload);
* :meth:`RoutingService.route_fault_tolerant` — IDA-dispersed delivery
  over those paths that transparently fails over to the surviving subset
  under a :class:`FaultSet`, exactly the Section 1 application.

Everything is observable via :meth:`RoutingService.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.core.embedding import MultiCopyEmbedding, MultiPathEmbedding
from repro.fault.faults import FaultyLinkModel
from repro.fault.ida import disperse, reconstruct
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import profile_span
from repro.service.engine import BuildEngine
from repro.service.registry import EmbeddingRegistry
from repro.service.specs import EmbeddingSpec

__all__ = ["RoutingService", "FaultSet", "DeliveryOutcome"]

# The service-level name for a set of failed directed links; the fault
# machinery's model is exactly that, so it *is* the type.
FaultSet = FaultyLinkModel


@dataclass
class DeliveryOutcome:
    """Result of one fault-tolerant delivery over the disjoint paths."""

    delivered: bool
    message: Optional[bytes]
    width: int
    alive_paths: Tuple[int, ...]  # indices of paths untouched by faults
    failed_paths: Tuple[int, ...]
    pieces_needed: int

    @property
    def overhead(self) -> float:
        """IDA bandwidth overhead ``w/m`` paid for this tolerance level."""
        return self.width / self.pieces_needed if self.pieces_needed else 0.0


def disjoint_paths(emb, guest_edge) -> Tuple[Tuple[int, ...], ...]:
    """The host paths ``emb`` provides for ``guest_edge``.

    Width-w embeddings return their w edge-disjoint paths; classical
    embeddings return their single path; multi-copy embeddings return one
    path per copy (k alternative routes).  A guest edge given against the
    stored orientation resolves to the reversed paths — the hypercube is
    directed, and the reverse of edge-disjoint paths is edge-disjoint.
    """
    u, v = guest_edge
    if isinstance(emb, MultiCopyEmbedding):
        out = []
        for copy in emb.copies:
            out.extend(disjoint_paths(copy, (u, v)))
        return tuple(out)
    paths = emb.edge_paths.get((u, v))
    if paths is None:
        reverse = emb.edge_paths.get((v, u))
        if reverse is None:
            sample = next(iter(emb.edge_paths), None)
            raise KeyError(
                f"guest edge {guest_edge!r} not in embedding "
                f"(edges look like {sample!r})"
            )
        if isinstance(emb, MultiPathEmbedding):
            return tuple(tuple(reversed(p)) for p in reverse)
        return (tuple(reversed(reverse)),)
    if isinstance(emb, MultiPathEmbedding):
        return tuple(tuple(p) for p in paths)
    return (tuple(paths),)


class RoutingService:
    """Facade: memoized embeddings + routing requests + fault tolerance."""

    def __init__(
        self,
        registry: Optional[EmbeddingRegistry] = None,
        engine: Optional[BuildEngine] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if metrics is None:
            metrics = registry.metrics if registry is not None else MetricsRegistry()
        self.metrics = metrics
        self.registry = registry if registry is not None else EmbeddingRegistry(
            metrics=metrics
        )
        self.engine = engine if engine is not None else BuildEngine(
            self.registry, metrics=self.metrics
        )

    # -- embeddings ------------------------------------------------------------

    def get_embedding(self, spec: EmbeddingSpec):
        """Verified embedding for ``spec`` (cache-aside through the registry)."""
        with self.metrics.time("get_embedding"):
            return self.registry.get_or_build(spec)

    def warm(self, specs: Iterable[EmbeddingSpec], parallel: bool = True) -> int:
        """Prefetch a batch of specs through the concurrent engine."""
        return self.engine.warm(specs, parallel=parallel)

    # -- routing -------------------------------------------------------------------

    def route(self, spec: EmbeddingSpec, guest_edge) -> Tuple[Tuple[int, ...], ...]:
        """The disjoint host paths serving ``guest_edge`` under ``spec``."""
        with profile_span("service.route", kind=spec.kind):
            with self.metrics.time("route"):
                emb = self.get_embedding(spec)
                paths = disjoint_paths(emb, guest_edge)
        self.metrics.incr("routes")
        return paths

    def route_fault_tolerant(
        self,
        spec: EmbeddingSpec,
        guest_edge,
        message: bytes = b"routing multiple paths in hypercubes",
        faults: Optional[FaultSet] = None,
        pieces_needed: Optional[int] = None,
    ) -> DeliveryOutcome:
        """Deliver ``message`` across the disjoint paths despite ``faults``.

        The message is IDA-dispersed into one piece per path; any
        ``pieces_needed`` surviving paths reconstruct it, so delivery
        tolerates ``w - pieces_needed`` failed paths.  The default
        ``pieces_needed=1`` (full dispersal redundancy, overhead ``w``)
        survives up to ``w - 1`` failures — raise it to trade bandwidth
        for tolerance, per the paper's Section 1 trade-off.
        """
        paths = self.route(spec, guest_edge)
        w = len(paths)
        m = 1 if pieces_needed is None else pieces_needed
        if not 1 <= m <= w:
            raise ValueError(f"pieces_needed must be in [1, {w}], got {m}")
        alive = tuple(
            i
            for i, p in enumerate(paths)
            if faults is None or faults.path_alive(p)
        )
        failed = tuple(i for i in range(w) if i not in alive)
        pieces = disperse(message, w, m)
        survivors = [pieces[i] for i in alive]
        if len(survivors) >= m:
            recovered = reconstruct(survivors, w, m)
            if recovered != message:
                raise AssertionError("IDA reconstruction mismatch")
            self.metrics.incr("deliveries")
            return DeliveryOutcome(True, recovered, w, alive, failed, m)
        self.metrics.incr("delivery_failures")
        return DeliveryOutcome(False, None, w, alive, failed, m)

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict:
        """Counters, timers and tier occupancy for this service instance."""
        return self.registry.stats()
