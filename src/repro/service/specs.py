"""Embedding request specifications — the service layer's vocabulary.

An :class:`EmbeddingSpec` names a paper construction plus its parameters
(`(guest kind, params)`); together with the construction version it yields
a deterministic, content-addressed cache key.  The spec is the unit every
service component speaks: the registry keys artifacts by it, the engine
fans batches of them out to worker processes, and the CLI parses its
arguments into one.

Keys are stable across processes and machines: they hash the canonical
JSON of ``(kind, sorted params, construction version)`` — nothing
time-, path- or interpreter-dependent.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = ["EmbeddingSpec", "build_spec", "CONSTRUCTION_VERSION", "KINDS"]

# Bump when any construction changes its output for the same parameters;
# old cache entries then miss (different key) instead of serving stale
# geometry.
CONSTRUCTION_VERSION = 1

# Guest families the service can build, mirroring ``repro embed``.
KINDS = ("cycle", "cycle2", "grid", "ccc", "tree", "large-cycle")


def _canonical(value: Any) -> Any:
    """JSON-stable form: tuples become lists, dicts sort by key."""
    if isinstance(value, tuple):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {k: _canonical(value[k]) for k in sorted(value)}
    return value


@dataclass(frozen=True)
class EmbeddingSpec:
    """An immutable, hashable request for one embedding.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so specs are
    usable as dict keys and pickle cheaply to worker processes.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    @classmethod
    def make(cls, kind: str, **params: Any) -> "EmbeddingSpec":
        if kind not in KINDS:
            raise ValueError(f"unknown guest kind {kind!r}; expected one of {KINDS}")
        return cls(kind, tuple(sorted(params.items())))

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def cache_key(self) -> str:
        """Deterministic content address of this request."""
        doc = {
            "kind": self.kind,
            "params": _canonical(self.param_dict()),
            "construction_version": CONSTRUCTION_VERSION,
        }
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    def describe(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({args})"


def build_spec(spec: EmbeddingSpec):
    """Construct the embedding a spec names (unverified — callers verify).

    Dispatches to the paper constructions; raises ``ValueError`` on an
    unknown kind and propagates each construction's own parameter errors.
    """
    from repro.obs.profile import profile_span

    with profile_span(f"build.{spec.kind}"):
        return _build_spec(spec)


def _build_spec(spec: EmbeddingSpec):
    p = spec.param_dict()
    if spec.kind == "cycle":
        from repro.core import embed_cycle_load1

        return embed_cycle_load1(p["n"])
    if spec.kind == "cycle2":
        from repro.core import embed_cycle_load2

        return embed_cycle_load2(p["n"], prefer_width=p.get("wide", False))
    if spec.kind == "grid":
        from repro.core import embed_grid_multipath

        return embed_grid_multipath(tuple(p["dims"]), torus=p.get("torus", False))
    if spec.kind == "ccc":
        from repro.core import ccc_multicopy_embedding

        return ccc_multicopy_embedding(p["n"])
    if spec.kind == "tree":
        from repro.core import theorem5_embedding

        return theorem5_embedding(p["m"])
    if spec.kind == "large-cycle":
        from repro.core import large_cycle_embedding

        return large_cycle_embedding(p["n"])
    raise ValueError(f"unknown guest kind {spec.kind!r}")
