"""Embedding request specifications — the service layer's vocabulary.

An :class:`EmbeddingSpec` names a paper construction plus its parameters
(`(guest kind, params)`); together with the construction version it yields
a deterministic, content-addressed cache key.  The spec is the unit every
service component speaks: the registry keys artifacts by it, the engine
fans batches of them out to worker processes, and the CLI parses its
arguments into one.

Keys are stable across processes and machines: they hash the canonical
JSON of ``(kind, sorted params, construction version)`` — nothing
time-, path- or interpreter-dependent.

Since the batch API redesign this module also carries the routing
vocabulary: :class:`RouteRequest` (one guest edge plus optional delivery
parameters), :class:`RouteResponse` (the resolved disjoint paths), and
:class:`BatchRouteResult` — the CSR-shaped answer of
:meth:`~repro.service.api.RoutingService.route_batch`, which stays in
flat arrays until a caller materializes individual responses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "BatchRouteResult",
    "EmbeddingSpec",
    "RouteRequest",
    "RouteResponse",
    "build_spec",
    "CONSTRUCTION_VERSION",
    "KINDS",
]

# Bump when any construction changes its output for the same parameters;
# old cache entries then miss (different key) instead of serving stale
# geometry.
CONSTRUCTION_VERSION = 1

# Guest families the service can build, mirroring ``repro embed``.
KINDS = ("cycle", "cycle2", "grid", "ccc", "tree", "large-cycle")


def _canonical(value: Any) -> Any:
    """JSON-stable form: tuples become lists, dicts sort by key."""
    if isinstance(value, tuple):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {k: _canonical(value[k]) for k in sorted(value)}
    return value


@dataclass(frozen=True)
class EmbeddingSpec:
    """An immutable, hashable request for one embedding.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so specs are
    usable as dict keys and pickle cheaply to worker processes.
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    @classmethod
    def make(cls, kind: str, **params: Any) -> "EmbeddingSpec":
        if kind not in KINDS:
            raise ValueError(f"unknown guest kind {kind!r}; expected one of {KINDS}")
        return cls(kind, tuple(sorted(params.items())))

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def cache_key(self) -> str:
        """Deterministic content address of this request."""
        doc = {
            "kind": self.kind,
            "params": _canonical(self.param_dict()),
            "construction_version": CONSTRUCTION_VERSION,
        }
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode()).hexdigest()

    def describe(self) -> str:
        args = ", ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind}({args})"


def build_spec(spec: EmbeddingSpec):
    """Construct the embedding a spec names (unverified — callers verify).

    Dispatches to the paper constructions; raises ``ValueError`` on an
    unknown kind and propagates each construction's own parameter errors.
    """
    from repro.obs.profile import profile_span

    with profile_span(f"build.{spec.kind}"):
        return _build_spec(spec)


def _build_spec(spec: EmbeddingSpec):
    p = spec.param_dict()
    if spec.kind == "cycle":
        from repro.core import embed_cycle_load1

        return embed_cycle_load1(p["n"])
    if spec.kind == "cycle2":
        from repro.core import embed_cycle_load2

        return embed_cycle_load2(p["n"], prefer_width=p.get("wide", False))
    if spec.kind == "grid":
        from repro.core import embed_grid_multipath

        return embed_grid_multipath(tuple(p["dims"]), torus=p.get("torus", False))
    if spec.kind == "ccc":
        from repro.core import ccc_multicopy_embedding

        return ccc_multicopy_embedding(p["n"])
    if spec.kind == "tree":
        from repro.core import theorem5_embedding

        return theorem5_embedding(p["m"])
    if spec.kind == "large-cycle":
        from repro.core import large_cycle_embedding

        return large_cycle_embedding(p["n"])
    raise ValueError(f"unknown guest kind {spec.kind!r}")


# -- routing vocabulary -------------------------------------------------------


@dataclass
class RouteRequest:
    """One routing question: a guest edge plus optional delivery knobs.

    ``message``/``faults``/``pieces_needed`` only matter to
    :meth:`~repro.service.api.RoutingService.route_fault_tolerant`; plain
    routing ignores them.  ``faults`` is a
    :class:`repro.fault.faults.FaultModel` (kept untyped here so the spec
    vocabulary stays import-light for worker processes).
    """

    guest_edge: Tuple[Any, Any]
    message: Optional[bytes] = None
    faults: Optional[Any] = None
    pieces_needed: Optional[int] = None


@dataclass
class RouteResponse:
    """The answer for one request: its ``w`` edge-disjoint host paths."""

    guest_edge: Tuple[Any, Any]
    paths: Tuple[Tuple[int, ...], ...]

    @property
    def width(self) -> int:
        return len(self.paths)


class BatchRouteResult:
    """A resolved batch, kept in flat CSR arrays until materialized.

    ``route_batch`` answers thousands of requests as three arrays — the
    concatenated path nodes, per-path offsets, and per-request offsets —
    so the hot path never builds Python tuples.  Materialization is lazy:
    ``result[i]`` (or :meth:`paths`) converts one request's slice into the
    same ``tuple(tuple(int, ...), ...)`` shape per-call routing returns,
    field-identical by construction.
    """

    def __init__(
        self,
        requests: Sequence[RouteRequest],
        nodes: Any,
        path_offsets: Any,
        request_offsets: Any,
    ) -> None:
        self.requests = list(requests)
        self.nodes = nodes
        self.path_offsets = path_offsets
        self.request_offsets = request_offsets

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def total_paths(self) -> int:
        return int(self.path_offsets.shape[0] - 1)

    def width(self, i: int) -> int:
        """Number of disjoint paths serving request ``i``."""
        return int(self.request_offsets[i + 1] - self.request_offsets[i])

    def paths(self, i: int) -> Tuple[Tuple[int, ...], ...]:
        """Request ``i``'s paths as plain tuples (the per-call shape)."""
        lo, hi = int(self.request_offsets[i]), int(self.request_offsets[i + 1])
        offsets = self.path_offsets
        nodes = self.nodes
        return tuple(
            tuple(nodes[int(offsets[j]) : int(offsets[j + 1])].tolist())
            for j in range(lo, hi)
        )

    def __getitem__(self, i: int) -> RouteResponse:
        if not -len(self.requests) <= i < len(self.requests):
            raise IndexError(f"request index {i} out of range")
        if i < 0:
            i += len(self.requests)
        return RouteResponse(self.requests[i].guest_edge, self.paths(i))

    def __iter__(self) -> Iterator[RouteResponse]:
        for i in range(len(self.requests)):
            yield self[i]

    def responses(self) -> List[RouteResponse]:
        """Materialize every response (the slow, convenient view)."""
        return list(self)
