"""Section 7: the multiple-path ("dilated") butterfly embedding.

"The multiple-path embedding of X gives a simple multiple-path embedding of
the butterfly.  Butterfly edges between levels n/2 and n/2+1 and between
levels n-1 and 0 are cut, thereby decomposing the butterfly into two sets
of independent butterflies.  One set is mapped to the rows and the other to
the columns of X.  The cut edges are inserted next; while these have width
n, they can have dilation up to 2n."

Concretely, with ``n = m + log m``: the guest is the 2m-level wrapped
butterfly.  Levels ``0..m-1`` decompose (by the untouched high column bits)
into ``2^m`` independent m-level butterflies hosted in rows of ``X``;
levels ``m..2m-1`` (by the low bits) into ``2^m`` column-hosted ones.
Within-half edges ride X's width-n path bundles; the two rings of cut
edges get ``n`` edge-disjoint hypercube paths each from the classical
rotation construction (a substitution for the paper's CCC-copy routes —
same width, same O(n) dilation bound, recorded in DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.butterfly_multicopy import butterfly_multicopy_embedding
from repro.core.cross_product import induced_cross_product_embedding
from repro.core.embedding import MultiPathEmbedding
from repro.hypercube.moments import moment
from repro.networks.butterfly import Butterfly
from repro.routing.pathutils import edge_disjoint_paths

__all__ = ["butterfly_multipath_embedding"]


def butterfly_multipath_embedding(m: int) -> MultiPathEmbedding:
    """Embed the 2m-level butterfly in ``Q_{2n}`` with width ``n``.

    ``m`` must be a power of two.  All within-half edges have dilation at
    most ``dilation(X) <= 4``; the cut edges (two of the ``2m`` levels) have
    dilation up to ``2n + 2``, exactly the paper's "confined high dilation".
    """
    mc = butterfly_multicopy_embedding(m, undirected=True)
    x = induced_cross_product_embedding(mc)
    n = x.info["n"]
    host = x.host
    phi = [copy.vertex_map for copy in mc.copies]
    num_copies = len(phi)

    guest = Butterfly(2 * m)
    mask = (1 << m) - 1

    # row/column line assignment for the sub-butterflies
    def host_of(vertex: Tuple[int, int]) -> int:
        level, col = vertex
        if level < m:
            # row half: sub-butterfly selected by the high m bits
            line = col >> m
            w = (level, col & mask)
            ci = moment(line) % num_copies
            return (line << n) | phi[ci][w]
        # column half: sub-butterfly selected by the low m bits
        line = col & mask
        w = (level - m, col >> m)
        ci = moment(line) % num_copies
        return (phi[ci][w] << n) | line

    vertex_map = {v: host_of(v) for v in guest.vertices()}

    edge_paths: Dict[Tuple, Tuple[Tuple[int, ...], ...]] = {}
    cut_levels = {m - 1, 2 * m - 1}
    for (u, v) in guest.edges():
        hu, hv = vertex_map[u], vertex_map[v]
        if hu == hv:
            edge_paths[(u, v)] = ((hu,),)
            continue
        level = u[0] if v[0] == (u[0] + 1) % (2 * m) else v[0]
        if level in cut_levels:
            # a cut edge: generic n edge-disjoint hypercube paths
            edge_paths[(u, v)] = tuple(
                edge_disjoint_paths(2 * n, hu, hv, n)
            )
        else:
            # within a half: a single X row/column edge
            edge_paths[(u, v)] = x.edge_paths[(hu, hv)]

    from collections import Counter

    load = max(Counter(vertex_map.values()).values())
    emb = MultiPathEmbedding(
        host,
        guest,
        vertex_map,
        edge_paths,
        name=f"sec7-butterfly-multipath-Q{2 * n}",
        load_allowed=load,
    )
    cut_dilation = max(
        len(p) - 1
        for (u, v), ps in edge_paths.items()
        for p in ps
        if (u[0] if v[0] == (u[0] + 1) % (2 * m) else v[0]) in cut_levels
    )
    emb.info = {
        "m": m,
        "n": n,
        "width": n,
        "cut_dilation": cut_dilation,
        "claim": {"width": n, "cut_dilation_upper": 2 * n + 2},
    }
    return emb
