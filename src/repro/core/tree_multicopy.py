"""Multiple-copy embeddings of trees (Section 8.1).

"Multiple-copy embeddings of trees are obtained by applying the embeddings
of trees into CCC [5, 4] to the multiple-copy embeddings of the CCC."

Pipeline: CBT -> butterfly (our [4]-substitute, `cbt_to_butterfly_map`)
-> CCC (`butterfly_to_ccc_embedding`, dilation 2 congestion 2) -> each of
Theorem 3's ``m`` CCC copies.  The result is ``m`` simultaneous copies of
the ``(m + log m)``-level complete binary tree in ``Q_{m + log m}`` with
O(1) measured load, dilation, and total congestion (constants recorded by
bench E12).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.ccc_multicopy import ccc_multicopy_embedding
from repro.core.embedding import Embedding, MultiCopyEmbedding
from repro.networks.butterfly import butterfly_to_ccc_embedding
from repro.networks.tree import CompleteBinaryTree
from repro.core.tree_multipath import cbt_to_butterfly_map
from repro.routing.pathutils import erase_loops

__all__ = ["cbt_multicopy_embedding"]


def cbt_multicopy_embedding(m: int) -> MultiCopyEmbedding:
    """Embed ``m`` copies of the ``(m + log m)``-level CBT in ``Q_{m + log m}``.

    ``m`` must be a power of two (Theorem 3).  Every copy composes the same
    CBT->butterfly->CCC maps with a different CCC copy, so per-copy paths
    are identical up to the copy's window relabeling.
    """
    ccc_mc = ccc_multicopy_embedding(m)
    n = m + (m.bit_length() - 1)
    tree = CompleteBinaryTree(n)
    bf_vmap, bf_routes = cbt_to_butterfly_map(m)
    _, bf_to_ccc = butterfly_to_ccc_embedding(m)

    # expand a butterfly route (bf vertices) into a CCC vertex route,
    # including reversed butterfly edges (the undirected CCC handles them)
    def ccc_route_of(bf_route: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
        out = [bf_route[0]]
        for a, b in zip(bf_route, bf_route[1:]):
            if (a, b) in bf_to_ccc:
                out.extend(bf_to_ccc[(a, b)][1:])
            else:  # reversed butterfly edge: reverse the forward CCC path
                seg = bf_to_ccc[(b, a)]
                out.extend(reversed(seg[:-1]))
        return out

    ccc_routes: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for (parent, child), route in bf_routes.items():
        ccc_routes[(parent, child)] = ccc_route_of(route)
        ccc_routes[(child, parent)] = ccc_route_of(route[::-1])

    copies: List[Embedding] = []
    for k, ccc_copy in enumerate(ccc_mc.copies):
        cmap = ccc_copy.vertex_map
        vertex_map = {v: cmap[bf_vmap[v]] for v in tree.vertices()}
        edge_paths: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        for edge, croute in ccc_routes.items():
            hosts = [cmap[x] for x in croute]
            edge_paths[edge] = erase_loops(hosts)
        copies.append(
            Embedding(
                ccc_mc.host, tree, vertex_map, edge_paths,
                name=f"cbt-multicopy-{k}",
            )
        )
    from collections import Counter

    per_copy_load = max(
        max(Counter(c.vertex_map.values()).values()) for c in copies
    )
    return MultiCopyEmbedding(
        ccc_mc.host, tree, copies, name=f"cbt-multicopy-{m}",
        copy_load_allowed=per_copy_load,
    )
