"""JSON serialization of embeddings.

Constructions like Theorem 5's tree pipeline or large Hamiltonian
decompositions take seconds to build; serializing them lets downstream
users cache, inspect, or ship them to other tools.  Guest vertices are
encoded structurally (ints, or lists for tuple ids) and restored exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, Union

from repro.core.embedding import Embedding, MultiCopyEmbedding, MultiPathEmbedding
from repro.hypercube.graph import Hypercube
from repro.networks.base import ExplicitGraph, GuestGraph

__all__ = ["to_json", "from_json", "dump", "load"]

FORMAT_VERSION = 1


def _package_version() -> str:
    from repro import __version__

    return __version__


def _encode_vertex(v: Any):
    # recursive: a vertex like (level, (b0, b1)) must round-trip exactly,
    # not decode into a tuple holding an unhashable list
    if isinstance(v, tuple):
        return [_encode_vertex(x) for x in v]
    return v


def _decode_vertex(v: Any):
    if isinstance(v, list):
        return tuple(_decode_vertex(x) for x in v)
    return v


def _guest_payload(guest: GuestGraph) -> Dict[str, Any]:
    return {
        "name": getattr(guest, "name", "") or repr(guest),
        "vertices": [_encode_vertex(v) for v in guest.vertices()],
        "edges": [
            [_encode_vertex(u), _encode_vertex(v)] for u, v in guest.edges()
        ],
    }


def to_json(
    emb: Union[Embedding, MultiPathEmbedding], construction: str = ""
) -> str:
    """Serialize a (multi-path) embedding to a JSON string.

    The payload records the package ``__version__`` and a ``construction``
    name (defaulting to the embedding's own name) so caching layers — e.g.
    :mod:`repro.service.registry` — can invalidate artifacts on version
    bumps without a format-version break: old files that lack the fields
    still load.
    """
    if isinstance(emb, MultiCopyEmbedding):
        raise TypeError(
            "serialize the individual copies of a MultiCopyEmbedding"
        )
    multipath = isinstance(emb, MultiPathEmbedding)
    payload: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "package_version": _package_version(),
        "construction": construction or emb.name,
        "style": "multipath" if multipath else "single",
        "host_dim": emb.host.n,
        "name": emb.name,
        "guest": _guest_payload(emb.guest),
        "vertex_map": [
            [_encode_vertex(v), node] for v, node in emb.vertex_map.items()
        ],
    }
    if multipath:
        payload["edge_paths"] = [
            [[_encode_vertex(u), _encode_vertex(v)], [list(p) for p in paths]]
            for (u, v), paths in emb.edge_paths.items()
        ]
        payload["load_allowed"] = emb.load_allowed
        if emb.step_of is not None:
            payload["step_of"] = [
                [[_encode_vertex(u), _encode_vertex(v)],
                 [list(st) for st in steps]]
                for (u, v), steps in emb.step_of.items()
            ]
    else:
        payload["edge_paths"] = [
            [[_encode_vertex(u), _encode_vertex(v)], list(path)]
            for (u, v), path in emb.edge_paths.items()
        ]
    return json.dumps(payload)


def from_json(
    text: str, verify: bool = True
) -> Union[Embedding, MultiPathEmbedding]:
    """Restore an embedding serialized with :func:`to_json` (and verify it).

    ``verify=False`` skips the structural re-check; only callers that have
    an independent integrity guarantee (e.g. the registry's checksum over a
    payload that was verified at build time) should use it.
    """
    payload = json.loads(text)
    if payload.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {payload.get('format_version')}"
        )
    host = Hypercube(payload["host_dim"])
    guest = ExplicitGraph(
        [_decode_vertex(v) for v in payload["guest"]["vertices"]],
        [
            (_decode_vertex(u), _decode_vertex(v))
            for u, v in payload["guest"]["edges"]
        ],
        name=payload["guest"].get("name", ""),
    )
    vertex_map = {
        _decode_vertex(v): node for v, node in payload["vertex_map"]
    }
    if payload["style"] == "multipath":
        edge_paths = {
            (_decode_vertex(u), _decode_vertex(v)): tuple(
                tuple(p) for p in paths
            )
            for (u, v), paths in payload["edge_paths"]
        }
        step_of = None
        if "step_of" in payload:
            step_of = {
                (_decode_vertex(u), _decode_vertex(v)): tuple(
                    tuple(st) for st in steps
                )
                for (u, v), steps in payload["step_of"]
            }
        emb = MultiPathEmbedding(
            host,
            guest,
            vertex_map,
            edge_paths,
            name=payload.get("name", ""),
            load_allowed=payload.get("load_allowed", 1),
            step_of=step_of,
        )
    else:
        edge_paths = {
            (_decode_vertex(u), _decode_vertex(v)): tuple(path)
            for (u, v), path in payload["edge_paths"]
        }
        emb = Embedding(
            host, guest, vertex_map, edge_paths, name=payload.get("name", "")
        )
    if verify:
        emb.verify()
    return emb


def dump(emb, fp: IO[str]) -> None:
    """Write an embedding to an open text file."""
    fp.write(to_json(emb))


def load(fp: IO[str], verify: bool = True):
    """Read an embedding from an open text file."""
    return from_json(fp.read(), verify=verify)
