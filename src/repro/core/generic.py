"""Generic embeddings for arbitrary guests — the library's entry ramp.

The paper's constructions are specialized; downstream users often just need
*some* verified embedding of their own communication graph to measure
against.  This module provides:

* :func:`shortest_path_embedding` — place guest vertices (greedy or given)
  and route every edge on a dimension-order shortest path;
* :func:`widen_embedding` — lift any single-path embedding to width ``w``
  using the classical edge-disjoint path construction, making the paper's
  throughput/fault machinery (schedules, IDA delivery) available to any
  guest.
"""

from __future__ import annotations

import warnings
from typing import Dict, Hashable, Optional, Tuple

from repro.core.embedding import Embedding, MultiPathEmbedding
from repro.hypercube.graph import Hypercube
from repro.networks.base import GuestGraph
from repro.routing.pathutils import edge_disjoint_paths
from repro.routing.permutation import dimension_order_path

__all__ = ["shortest_path_embedding", "widen_embedding"]


def shortest_path_embedding(
    host: Hypercube,
    guest: GuestGraph,
    placement: Optional[Dict[Hashable, int]] = None,
) -> Embedding:
    """Embed any guest with dimension-order shortest-path routes.

    Without an explicit ``placement``, guest vertices are assigned host
    nodes round-robin in iteration order (load ``ceil(|V|/|W|)``).  When
    that default placement must overload the host (more guest vertices than
    host nodes), a ``UserWarning`` is emitted instead of silently piling
    vertices up, and the measured load is recorded in the verification
    report attached to the returned embedding (``emb.verification``).
    The result is verified before being returned.
    """
    overloaded = placement is None and guest.num_vertices > host.num_nodes
    if placement is None:
        placement = {
            v: i % host.num_nodes for i, v in enumerate(guest.vertices())
        }
    if overloaded:
        load = -(-guest.num_vertices // host.num_nodes)
        warnings.warn(
            f"shortest_path_embedding: guest has {guest.num_vertices} "
            f"vertices but Q_{host.n} has only {host.num_nodes} nodes; "
            f"default round-robin placement overloads every host node up "
            f"to load {load} — pass an explicit placement to control it",
            UserWarning,
            stacklevel=2,
        )
    edge_paths: Dict[Tuple, Tuple[int, ...]] = {}
    for (u, v) in guest.edges():
        hu, hv = placement[u], placement[v]
        edge_paths[(u, v)] = tuple(dimension_order_path(host.n, hu, hv))
    emb = Embedding(
        host, guest, dict(placement), edge_paths, name="shortest-path"
    )
    emb.verification = emb.verify(strict=False).raise_if_failed()
    return emb


def widen_embedding(emb: Embedding, width: int) -> MultiPathEmbedding:
    """Give every guest edge ``width`` edge-disjoint host paths.

    Paths come from the classical rotation construction between the two
    images (length at most ``distance + 2``); co-located endpoints keep a
    single trivial path.  Requires ``width <= host.n`` and a one-to-one
    ``emb`` is *not* required — only the paths are rebuilt.
    """
    host = emb.host
    if not 1 <= width <= host.n:
        raise ValueError(f"need 1 <= width <= {host.n}, got {width}")
    edge_paths: Dict[Tuple, Tuple[Tuple[int, ...], ...]] = {}
    for (u, v) in emb.guest.edges():
        hu, hv = emb.vertex_map[u], emb.vertex_map[v]
        if hu == hv:
            edge_paths[(u, v)] = ((hu,),)
        else:
            edge_paths[(u, v)] = tuple(
                edge_disjoint_paths(host.n, hu, hv, width)
            )
    from collections import Counter

    load = max(Counter(emb.vertex_map.values()).values())
    wide = MultiPathEmbedding(
        host,
        emb.guest,
        dict(emb.vertex_map),
        edge_paths,
        name=f"widened-{emb.name or 'embedding'}",
        load_allowed=load,
    )
    wide.verification = wide.verify(strict=False).raise_if_failed()
    return wide
