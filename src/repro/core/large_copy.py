"""Large-copy embeddings (Section 8.1: Corollary 3 and Lemma 9).

A *large-copy* embedding places a single ``n * 2**n``-node guest in ``Q_n``
with the load balanced (``n`` guest vertices per host node) and the guest
edges spread so evenly that dilation and congestion are 1 (2 for FFTs).

* **Corollary 3** — the ``n * 2**n``-node directed cycle: an Eulerian
  circuit of Lemma 1's ``n`` edge-disjoint directed Hamiltonian cycles uses
  every directed hypercube edge exactly once; the undirected variant strings
  the ``n/2`` undirected cycles into one ``n * 2**{n-1}``-node cycle.
* **Lemma 9** — CCC/FFT/butterfly: reverse the standard node-expansion that
  builds these graphs from the hypercube: the cycle/path that replaced
  hypercube node ``c`` maps back onto ``c``; straight edges become local
  (zero-length paths), cross edges ride the hypercube edge they came from.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.embedding import Embedding
from repro.hypercube.graph import Hypercube
from repro.hypercube.hamiltonian import directed_hamiltonian_decomposition
from repro.networks.butterfly import Butterfly, FFTGraph
from repro.networks.ccc import CubeConnectedCycles
from repro.networks.cycle import DirectedCycle

__all__ = [
    "large_cycle_embedding",
    "large_cycle_embedding_undirected",
    "large_ccc_embedding",
    "large_butterfly_embedding",
    "large_fft_embedding",
]


def large_cycle_embedding(n: int) -> Embedding:
    """Corollary 3: the ``n * 2**n``-node directed cycle in ``Q_n``.

    Load ``n``, dilation 1, congestion 1 — every directed hypercube link
    carries exactly one cycle edge (an Eulerian circuit of the Lemma 1
    cycles).  Requires even ``n`` (Lemma 1's directed form).
    """
    if n < 2 or n % 2:
        raise ValueError(f"need even n >= 2, got {n}")
    host = Hypercube(n)
    cycles = directed_hamiltonian_decomposition(n)
    succs: List[Dict[int, int]] = [
        {c[i]: c[(i + 1) % len(c)] for i in range(len(c))} for c in cycles
    ]
    # Hierholzer over the union (out-degree n at every node)
    remaining = {v: [s[v] for s in succs] for v in range(host.num_nodes)}
    stack, circuit = [0], []
    while stack:
        v = stack[-1]
        if remaining[v]:
            stack.append(remaining[v].pop())
        else:
            circuit.append(stack.pop())
    circuit.reverse()
    nodes = circuit[:-1]
    total = n * host.num_nodes
    if len(nodes) != total:
        raise AssertionError("Eulerian circuit did not cover all edges")
    guest = DirectedCycle(total)
    vertex_map = {i: nodes[i] for i in range(total)}
    edge_paths = {
        (i, (i + 1) % total): (nodes[i], nodes[(i + 1) % total])
        for i in range(total)
    }
    return Embedding(host, guest, vertex_map, edge_paths, name=f"large-cycle-Q{n}")


def large_ccc_embedding(n: int) -> Embedding:
    """Lemma 9: the ``n * 2**n``-node CCC in ``Q_n``, dilation 1, congestion 1.

    CCC vertex ``(level, column)`` maps to hypercube node ``column``;
    straight edges are node-local (zero-length paths), cross edges at level
    ``l`` ride the dimension-``l`` hypercube edge — each directed edge
    exactly once.
    """
    host = Hypercube(n)
    ccc = CubeConnectedCycles(n)
    vertex_map = {(lev, c): c for lev in range(n) for c in range(host.num_nodes)}
    edge_paths: Dict[Tuple, Tuple[int, ...]] = {}
    for (u, v) in ccc.straight_edges():
        edge_paths[(u, v)] = (vertex_map[u],)  # co-located
    for (u, v) in ccc.cross_edges():
        edge_paths[(u, v)] = (vertex_map[u], vertex_map[v])
    return Embedding(host, ccc, vertex_map, edge_paths, name=f"large-ccc-Q{n}")


def large_butterfly_embedding(n: int) -> Embedding:
    """Lemma 9: the ``n * 2**n``-node butterfly in ``Q_n`` (congestion <= 2)."""
    host = Hypercube(n)
    bf = Butterfly(n)
    vertex_map = {(lev, c): c for lev in range(n) for c in range(host.num_nodes)}
    edge_paths: Dict[Tuple, Tuple[int, ...]] = {}
    for (u, v) in bf.straight_edges():
        edge_paths[(u, v)] = (vertex_map[u],)
    for (u, v) in bf.cross_edges():
        edge_paths[(u, v)] = (vertex_map[u], vertex_map[v])
    return Embedding(host, bf, vertex_map, edge_paths, name=f"large-butterfly-Q{n}")


def large_fft_embedding(n: int) -> Embedding:
    """Lemma 9: the ``(n+1) * 2**n``-node FFT graph in ``Q_n`` (congestion 2).

    Ranks collapse onto the column node; the two rank-``l`` out-edges of a
    column are one local edge and one dimension-``l`` hypercube edge.
    """
    host = Hypercube(n)
    fft = FFTGraph(n)
    vertex_map = {(rank, c): c for rank in range(n + 1) for c in range(host.num_nodes)}
    edge_paths: Dict[Tuple, Tuple[int, ...]] = {}
    for (u, v) in fft.edges():
        hu, hv = vertex_map[u], vertex_map[v]
        edge_paths[(u, v)] = (hu,) if hu == hv else (hu, hv)
    return Embedding(host, fft, vertex_map, edge_paths, name=f"large-fft-Q{n}")


def large_cycle_embedding_undirected(n: int) -> Embedding:
    """Corollary 3's other half: the ``n * 2**(n-1)``-node *undirected* cycle.

    An Eulerian circuit of the ``n/2`` undirected Hamiltonian cycles of
    Lemma 1 visits every undirected link exactly once; the guest cycle's two
    edge orientations ride the link's two directed edges, so the directed
    congestion is 1 in both directions.  Requires even ``n >= 2``.
    """
    if n < 2 or n % 2:
        raise ValueError(f"need even n >= 2, got {n}")
    from repro.hypercube.hamiltonian import hamiltonian_decomposition
    from repro.networks.base import ExplicitGraph

    host = Hypercube(n)
    dec = hamiltonian_decomposition(n)
    # undirected adjacency with multiplicity (each vertex has degree n)
    adj: Dict[int, List[int]] = {v: [] for v in range(host.num_nodes)}
    for cyc in dec.cycles:
        for u, v in zip(cyc, list(cyc[1:]) + [cyc[0]]):
            adj[u].append(v)
            adj[v].append(u)
    # Hierholzer on the undirected union
    stack, circuit = [0], []
    while stack:
        v = stack[-1]
        if adj[v]:
            w = adj[v].pop()
            adj[w].remove(v)
            stack.append(w)
        else:
            circuit.append(stack.pop())
    circuit.reverse()
    nodes = circuit[:-1]
    total = n * host.num_nodes // 2
    if len(nodes) != total:
        raise AssertionError("Eulerian circuit did not cover all links")
    vertices = list(range(total))
    edges = []
    edge_paths: Dict[Tuple, Tuple[int, ...]] = {}
    for i in range(total):
        j = (i + 1) % total
        hu, hv = nodes[i], nodes[j]
        edges.append((i, j))
        edges.append((j, i))
        edge_paths[(i, j)] = (hu, hv)
        edge_paths[(j, i)] = (hv, hu)
    guest = ExplicitGraph(vertices, edges, name=f"undirected-cycle-{total}")
    vertex_map = {i: nodes[i] for i in vertices}
    return Embedding(
        host, guest, vertex_map, edge_paths, name=f"large-ucycle-Q{n}"
    )
