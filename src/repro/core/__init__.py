"""The paper's contribution: multiple-path / multiple-copy / large-copy embeddings.

Public entry points:

* :mod:`repro.core.embedding` — embedding data model, metrics, verification;
* :mod:`repro.core.cycle_multicopy` — gray-code baseline and Lemma 1 copies;
* :mod:`repro.core.cycle_multipath` — Theorems 1 and 2;
* :mod:`repro.core.grid_multipath` — Corollaries 1 and 2;
* :mod:`repro.core.ccc_multicopy` — Theorem 3 (and Lemma 4);
* :mod:`repro.core.butterfly_multicopy` — butterfly copies via CCC (§5.4);
* :mod:`repro.core.cross_product` — Theorem 4 (the general technique);
* :mod:`repro.core.tree_multipath` — Theorem 5 and Section 6.2;
* :mod:`repro.core.large_copy` — Corollary 3 and Lemma 9;
* :mod:`repro.core.bounds` — Lemma 3 lower bounds.
"""

from repro.core.embedding import Embedding, MultiCopyEmbedding, MultiPathEmbedding
from repro.core.cycle_multicopy import (
    cycle_multicopy_embedding,
    graycode_cycle_embedding,
)
from repro.core.cycle_multipath import (
    embed_cycle_load1,
    embed_cycle_load2,
    theorem1_claim,
    theorem2_claim,
)
from repro.core.grid_multipath import embed_grid_multipath, corollary1_claim
from repro.core.ccc_multicopy import (
    ccc_multicopy_embedding,
    ccc_single_embedding,
    theorem3_claim,
)
from repro.core.butterfly_multicopy import butterfly_multicopy_embedding
from repro.core.butterfly_multipath import butterfly_multipath_embedding
from repro.core.cross_product import induced_cross_product_embedding, theorem4_claim
from repro.core.grid_multicopy import grid_multicopy_embedding
from repro.core.tree_multicopy import cbt_multicopy_embedding
from repro.core.tree_multipath import (
    arbitrary_tree_embedding,
    cbt_to_butterfly_map,
    theorem5_embedding,
    tree_to_cbt_map,
)
from repro.core.large_copy import (
    large_butterfly_embedding,
    large_ccc_embedding,
    large_cycle_embedding,
    large_fft_embedding,
)
from repro.core.bounds import (
    count_short_paths,
    max_width_for_cost3,
    min_dilation_for_width,
    verify_no_two_hop_paths,
)

__all__ = [
    "Embedding",
    "MultiCopyEmbedding",
    "MultiPathEmbedding",
    "cycle_multicopy_embedding",
    "graycode_cycle_embedding",
    "embed_cycle_load1",
    "embed_cycle_load2",
    "theorem1_claim",
    "theorem2_claim",
    "embed_grid_multipath",
    "corollary1_claim",
    "ccc_multicopy_embedding",
    "ccc_single_embedding",
    "theorem3_claim",
    "butterfly_multicopy_embedding",
    "butterfly_multipath_embedding",
    "induced_cross_product_embedding",
    "grid_multicopy_embedding",
    "cbt_multicopy_embedding",
    "theorem4_claim",
    "arbitrary_tree_embedding",
    "cbt_to_butterfly_map",
    "theorem5_embedding",
    "tree_to_cbt_map",
    "large_butterfly_embedding",
    "large_ccc_embedding",
    "large_cycle_embedding",
    "large_fft_embedding",
    "count_short_paths",
    "max_width_for_cost3",
    "min_dilation_for_width",
    "verify_no_two_hop_paths",
]
