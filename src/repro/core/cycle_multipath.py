"""Theorems 1 and 2: multiple-path embeddings of cycles in hypercubes.

**Theorem 1** (load 1): the ``2**n``-node directed cycle embeds in ``Q_n``
with width ``floor(n/2)`` and ``floor(n/2)``-packet cost 3.  The
construction partitions ``Q_n = Q_{2k} x Q_{2k+r}`` (``n = 4k + r``), picks
one *special* directed Hamiltonian cycle (Lemma 1) per column — indexed by
the *moment* of the column's position so that block-neighboring columns get
distinct cycles — threads one long cycle ``C`` through all special cycles in
gray-code column order, and widens every edge of ``C`` with length-3 detours
through neighboring columns/rows plus the direct edge.

**Theorem 2** (load 2): the ``2**{n+1}``-node directed cycle embeds in
``Q_n`` by giving *every* row and column a special cycle and taking an
Eulerian circuit of their union; widths/costs per ``n mod 4`` as in the
paper.

A note on width (recorded in EXPERIMENTS.md): indexing ``2k`` edge-disjoint
cycles by moments requires the moment alphabet to have at most ``2k`` values,
i.e. ``2k`` must be a power of two (otherwise a neighborhood-rainbow
labeling with exactly ``2k`` colors does not exist — each color class would
have to be an efficient open dominating set of ``Q_{2k}``, which forces
``2k | 2**{2k}``).  The paper implicitly assumes this (cf. its Section 5
"assume n is a power of 2").  For other ``n`` this module constructs the
widest certified variant: detour width ``a = 2**floor(log2(2k))`` with cost
3 (Theorem 1), or full width with one extra step (Theorem 2's cost-4
variants, which reuse a cycle exactly as the paper does for
``n = 2, 3 (mod 4)``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.embedding import MultiPathEmbedding
from repro.hypercube.graph import Hypercube
from repro.hypercube.graycode import gray
from repro.hypercube.hamiltonian import directed_hamiltonian_decomposition
from repro.hypercube.moments import moment
from repro.networks.cycle import DirectedCycle

__all__ = [
    "embed_cycle_load1",
    "embed_cycle_load2",
    "theorem1_claim",
    "theorem2_claim",
    "theorem2_batched_schedule",
]


def _largest_pow2_at_most(x: int) -> int:
    if x < 1:
        raise ValueError(f"need x >= 1, got {x}")
    return 1 << (x.bit_length() - 1)


def theorem1_claim(n: int) -> Dict[str, int]:
    """Paper claim for Theorem 1: width floor(n/2), cost 3 (load 1)."""
    return {"load": 1, "width": n // 2, "cost": 3}


def theorem2_claim(n: int, prefer_width: bool = False) -> Dict[str, int]:
    """Paper claim for Theorem 2 as a function of ``n mod 4``."""
    half = n // 2
    if n % 4 in (0, 1):
        return {"load": 2, "width": half, "cost": 3}
    if prefer_width:
        return {"load": 2, "width": half, "cost": 4}
    return {"load": 2, "width": half - 1, "cost": 3}


# ---------------------------------------------------------------------------
# Theorem 1
# ---------------------------------------------------------------------------


def embed_cycle_load1(n: int, labeling: str = "moment") -> MultiPathEmbedding:
    """Theorem 1: embed the ``2**n``-node directed cycle in ``Q_n`` (load 1).

    Returns a verified :class:`MultiPathEmbedding` whose ``info`` attribute
    records the construction parameters, achieved width (``a`` detour paths
    of length 3 plus the direct edge) and the scheduled cost.

    ``labeling`` selects the special-cycle assignment: ``"moment"`` (the
    paper's, giving edge-disjoint projections and cost 3) or ``"constant"``
    — an *ablation* where every column uses cycle 0, so neighboring columns
    project the *same* cycle and the middle edges pile up (the step schedule
    then fails verification; see bench A2).
    """
    if n < 4:
        raise ValueError(f"Theorem 1 construction needs n >= 4, got {n}")
    if labeling not in ("moment", "constant"):
        raise ValueError(f"unknown labeling {labeling!r}")
    k, r = divmod(n, 4)
    p = 2 * k          # column subcube dimensions (high p bits = in-column address)
    q = 2 * k + r      # column-name bits (low q bits); block = low r bits
    a = _largest_pow2_at_most(2 * k)  # detour width (= 2k when 2k is a power of 2)
    host = Hypercube(n)

    cycles = directed_hamiltonian_decomposition(p)  # 2k cycles over p-bit space
    size_col = 1 << p
    position_of = [
        {node: idx for idx, node in enumerate(cyc)} for cyc in cycles
    ]

    def label(col: int) -> int:
        # moment of the low a position bits; values lie in [0, a)
        if labeling == "constant":
            return 0
        return moment((col >> r) & ((1 << a) - 1))

    # -- thread the long cycle C through the special cycles -------------------
    columns = [gray(i) for i in range(1 << q)]
    nodes: List[int] = []
    row = 0
    for col in columns:
        cyc = cycles[label(col)]
        start = position_of[label(col)][row]
        nodes.extend(((cyc[(start + t) % size_col] << q) | col) for t in range(size_col))
        row = cyc[(start + size_col - 1) % size_col]  # exit at pred(entry)
    if row != 0:
        raise AssertionError(
            "cycle C did not close at row 0 — construction invariant violated"
        )

    # -- widen every edge of C ---------------------------------------------------
    guest = DirectedCycle(1 << n)
    vertex_map = {i: h for i, h in enumerate(nodes)}
    edge_paths: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {}
    step_of: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {}
    total = 1 << n
    for i in range(total):
        hu, hv = nodes[i], nodes[(i + 1) % total]
        dim = host.dimension_of(hu, hv)
        if dim >= q:
            detour_dims = [r + j for j in range(a)]       # into neighbor columns
        else:
            detour_dims = [q + j for j in range(a)]       # into neighbor rows
        paths = tuple(
            (hu, hu ^ (1 << d), hv ^ (1 << d), hv) for d in detour_dims
        ) + ((hu, hv),)
        edge_paths[(i, (i + 1) % total)] = paths
        step_of[(i, (i + 1) % total)] = tuple((1, 2, 3) for _ in range(a)) + ((1,),)

    emb = MultiPathEmbedding(
        host,
        guest,
        vertex_map,
        edge_paths,
        name=f"theorem1-Q{n}",
        load_allowed=1,
        step_of=step_of,
    )
    emb.verify()
    emb.info = {
        "n": n,
        "k": k,
        "r": r,
        "a": a,
        "p": p,
        "q": q,
        "width": a + 1,
        "cost": 3,
        "packets_per_edge": a + 2,  # the direct edge carries a 2nd packet at step 3
        "claim": theorem1_claim(n),
    }
    return emb


# ---------------------------------------------------------------------------
# Theorem 2
# ---------------------------------------------------------------------------


def embed_cycle_load2(
    n: int, prefer_width: bool = False, cycle_shift: int = 0
) -> MultiPathEmbedding:
    """Theorem 2: embed the ``2**{n+1}``-node directed cycle in ``Q_n`` (load 2).

    ``prefer_width`` selects, for ``n = 2, 3 (mod 4)``, the paper's
    width-``floor(n/2)`` cost-4 variant (one cycle is chosen twice) instead
    of the width-``floor(n/2) - 1`` cost-3 variant.

    ``cycle_shift`` rotates the cycle numbering, changing *which* cycle the
    cost-4 variant doubles — the knob behind the paper's batched remark
    ("if ... a different edge-disjoint cycle were used twice in each batch
    then the 2k(2k+1)-packet cost would be 3(2k)+1 and not 4(2k)"); see
    :func:`theorem2_batched_schedule`.
    """
    if n < 4:
        raise ValueError(f"Theorem 2 construction needs n >= 4, got {n}")
    k, r4 = divmod(n, 4)
    if r4 == 0:
        p, q, w = 2 * k, 2 * k, 2 * k
    elif r4 == 1:
        p, q, w = 2 * k, 2 * k + 1, 2 * k
    elif r4 == 2:
        p, q, w = (2 * k + 1, 2 * k + 1, 2 * k + 1) if prefer_width else (
            2 * k, 2 * k + 2, 2 * k)
    else:
        p, q, w = (2 * k + 1, 2 * k + 2, 2 * k + 1) if prefer_width else (
            2 * k, 2 * k + 3, 2 * k)
    host = Hypercube(n)
    r_col = q - w  # block bits of the column name

    col_cycles = directed_hamiltonian_decomposition(p)  # over p-bit row space
    row_cycles = directed_hamiltonian_decomposition(q)  # over q-bit column space
    mask = (1 << w) - 1

    def col_cycle_index(col: int) -> int:
        return (moment((col >> r_col) & mask) + cycle_shift) % len(col_cycles)

    def row_cycle_index(rho: int) -> int:
        return (moment(rho & mask) + cycle_shift) % len(row_cycles)

    # successor maps of the two special cycles through every node
    col_succ_of = [_successor_map(c) for c in col_cycles]
    row_succ_of = [_successor_map(c) for c in row_cycles]

    def out_neighbors(h: int) -> Tuple[int, int]:
        x, c = h >> q, h & ((1 << q) - 1)
        col_nxt = (col_succ_of[col_cycle_index(c)][x] << q) | c
        row_nxt = (x << q) | row_succ_of[row_cycle_index(x)][c]
        return col_nxt, row_nxt

    euler = _eulerian_circuit(1 << n, out_neighbors)
    total = 1 << (n + 1)
    if len(euler) != total:
        raise AssertionError(
            f"Eulerian circuit covers {len(euler)}/{total} edges — special "
            "cycle union is not connected"
        )

    guest = DirectedCycle(total)
    vertex_map = {i: h for i, h in enumerate(euler)}
    edge_paths: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {}
    for i in range(total):
        hu, hv = euler[i], euler[(i + 1) % total]
        dim = host.dimension_of(hu, hv)
        if dim >= q:
            detour_dims = [r_col + j for j in range(w)]   # column edge
        else:
            detour_dims = [q + j for j in range(w)]       # row edge
        edge_paths[(i, (i + 1) % total)] = tuple(
            (hu, hu ^ (1 << d), hv ^ (1 << d), hv) for d in detour_dims
        )

    # middle-edge congestion decides the cost: 3 when every middle edge is
    # used once, 4 when a reused cycle doubles up some middle edges.
    middle_use: Dict[int, int] = {}
    step_of = {}
    for edge, paths in edge_paths.items():
        steps = []
        for path in paths:
            eid = host.edge_id(path[1], path[2])
            middle_use[eid] = middle_use.get(eid, 0) + 1
            steps.append((1, 1 + middle_use[eid], 0))  # final step fixed below
        step_of[edge] = steps
    mc = max(middle_use.values())
    cost = 2 + mc
    for edge, steps in step_of.items():
        step_of[edge] = tuple((s[0], s[1], cost) for s in steps)

    emb = MultiPathEmbedding(
        host,
        guest,
        vertex_map,
        edge_paths,
        name=f"theorem2-Q{n}",
        load_allowed=2,
        step_of=step_of,
    )
    emb.verify()
    emb.info = {
        "n": n,
        "p": p,
        "q": q,
        "w": w,
        "width": w,
        "middle_congestion": mc,
        "cost": cost,
        "packets_per_edge": w,
        "claim": theorem2_claim(n, prefer_width),
    }
    return emb


def _successor_map(cycle: List[int]) -> Dict[int, int]:
    return {
        cycle[i]: cycle[(i + 1) % len(cycle)] for i in range(len(cycle))
    }


def _eulerian_circuit(num_nodes: int, out_neighbors) -> List[int]:
    """Hierholzer's algorithm on the 2-out-regular special-cycle union.

    Returns the circuit as a node sequence of length ``2 * num_nodes``
    (one entry per edge; the final edge returns to the first node).
    """
    remaining = {h: list(out_neighbors(h)) for h in range(num_nodes)}
    stack = [0]
    circuit: List[int] = []
    while stack:
        v = stack[-1]
        if remaining[v]:
            stack.append(remaining[v].pop())
        else:
            circuit.append(stack.pop())
    circuit.reverse()
    if circuit[0] != circuit[-1]:
        raise AssertionError("Eulerian walk is not closed")
    return circuit[:-1]


def theorem2_batched_schedule(n: int, batches: int | None = None):
    """The paper's batched remark after Theorem 2, realized and measured.

    "(Note that if each node sent 2k batches of 2k+1 packets and a different
    edge-disjoint cycle were used twice in each batch then the 2k(2k+1)-packet
    cost would be 3(2k)+1 and not 4(2k))."

    We build ``batches`` copies of the width-``2k+1`` embedding, rotating the
    cycle numbering so each batch doubles a *different* cycle, and pipeline
    them at the smallest per-batch offset that passes schedule verification.

    Reproduction note: a straight pipeline cannot reach period 3 — every
    batch's first hops cover *all* detour-class directed links, so the
    4th-step stragglers of one batch always collide with the next batch's
    first hops regardless of which cycle is doubled.  The verifier-backed
    search therefore settles at period 4 (total ``4 * batches``), and the
    remark's ``3(2k) + 1`` appears to need a scheduling refinement the paper
    does not spell out.  Returns the verified
    :class:`repro.routing.schedule.PacketSchedule`.
    """
    from repro.routing.schedule import PacketSchedule, ScheduledPacket

    if n % 4 not in (2, 3):
        raise ValueError("the batched remark concerns n = 2, 3 (mod 4)")
    if batches is None:
        batches = 2 * (n // 4)
    embeddings = [
        embed_cycle_load2(n, prefer_width=True, cycle_shift=b)
        for b in range(batches)
    ]
    host = embeddings[0].host
    packets = []
    offset = 0
    for emb in embeddings:
        for period in (3, 4):
            trial = list(packets)
            for edge, paths in emb.edge_paths.items():
                for path, st in zip(paths, emb.step_of[edge]):
                    trial.append(
                        ScheduledPacket(
                            tuple(path), tuple(s + offset for s in st)
                        )
                    )
            sched = PacketSchedule(host, trial)
            try:
                sched.verify()
                packets = trial
                offset += period
                break
            except AssertionError:
                if period == 4:
                    raise
                offset += 1  # retry this batch one step later
    final = PacketSchedule(host, packets)
    final.verify()
    return final
