"""Corollaries 1 and 2: multiple-path embeddings of grids (Section 4.5).

Grids and tori are cross products of paths and cycles, and hypercubes are
cross products of hypercubes — so each grid axis is embedded by Theorem 1
into its own factor subcube, and the cross product inherits the per-axis
width-``floor(a/2)`` cost-3 paths.  Axis ``i`` occupies host dimensions
``[i*a, (i+1)*a)``; since every path of an axis-``i`` edge stays inside
axis ``i``'s dimensions, *all* axes can exchange packets simultaneously in
the same 3 steps.

Grid edges are bidirectional; the reverse of a Theorem 1 path set uses the
reversed directed links, which are disjoint resources from the forward ones,
so both directions also run concurrently.

Unequal side lengths (Corollary 2) are first *squared* by
:func:`repro.networks.grid.square_grid_map` (contraction: dilation 1, load
``prod(ceil(L_i / L))``; see the substitution note there), then embedded as
an equal-sided grid.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.core.cycle_multipath import embed_cycle_load1
from repro.core.embedding import MultiPathEmbedding
from repro.hypercube.graph import Hypercube
from repro.networks.grid import Grid, Torus, square_grid_map

__all__ = ["embed_grid_multipath", "corollary1_claim"]


def corollary1_claim(k: int, side: int) -> Dict[str, object]:
    """Paper claim for Corollary 1: width ``floor(ceil(log L)/2)``, cost 3."""
    a = max(1, math.ceil(math.log2(side)))
    return {
        "width": a // 2,
        "cost": 3,
        "expansion_upper": k + 1,
    }


def embed_grid_multipath(dims, torus: bool = False) -> MultiPathEmbedding:
    """Embed a k-axis grid (or torus) with multiple paths per edge.

    Equal power-of-two sides reproduce Corollary 1 exactly; unequal sides go
    through the Corollary 2 squaring step first (the returned embedding then
    has the squaring load).  Tori require power-of-two sides (the wrap edge
    must be a guest cycle edge).
    """
    dims = tuple(int(d) for d in dims)
    k = len(dims)
    if k < 1:
        raise ValueError("need at least one axis")
    guest = (Torus if torus else Grid)(dims)

    logs = {max(2, math.ceil(math.log2(max(2, d)))) for d in dims}
    if len(logs) == 1:
        a = logs.pop()
        squared_map = None
    else:
        # Corollary 2: square first, then embed the equal-sided grid
        mapping, sq_dims, load = square_grid_map(dims)
        side_raw = sq_dims[0]
        a = max(2, math.ceil(math.log2(max(2, side_raw))))
        squared_map = mapping
    if torus and any(d != (1 << a) for d in dims):
        raise ValueError("tori need power-of-two sides (wrap must be a cycle edge)")

    axis_emb = embed_cycle_load1(a) if a >= 4 else None
    if axis_emb is None:
        # axes too small for Theorem 1 (a < 4): fall back to gray order with
        # the direct edge only (width 1), keeping the API total
        from repro.hypercube.graycode import gray_node_sequence

        seq = gray_node_sequence(a)
        axis_vmap = {i: seq[i] for i in range(1 << a)}
        axis_paths = {
            (i, (i + 1) % (1 << a)): (
                (seq[i], seq[(i + 1) % (1 << a)]),
            )
            for i in range(1 << a)
        }
        axis_steps = {e: ((1,),) for e in axis_paths}
        width = 1
    else:
        axis_vmap = axis_emb.vertex_map
        axis_paths = axis_emb.edge_paths
        axis_steps = axis_emb.step_of
        width = axis_emb.width

    host = Hypercube(a * k)

    def host_node(coord: Tuple[int, ...]) -> int:
        v = 0
        for i, x in enumerate(coord):
            v |= axis_vmap[x] << (i * a)
        return v

    vertex_map = {}
    for v in guest.vertices():
        coord = squared_map[v] if squared_map is not None else v
        vertex_map[v] = host_node(coord)

    edge_paths: Dict[Tuple, Tuple[Tuple[int, ...], ...]] = {}
    step_of: Dict[Tuple, Tuple[Tuple[int, ...], ...]] = {}
    # with contraction squaring, several guest edges ride the same squared
    # edge; they serialize in 6-step phases
    phase_count: Dict[Tuple, int] = {}
    for (u, v) in guest.edges():
        cu = squared_map[u] if squared_map is not None else u
        cv = squared_map[v] if squared_map is not None else v
        if cu == cv:  # contracted into the same cell: co-located
            edge_paths[(u, v)] = ((vertex_map[u],),)
            step_of[(u, v)] = ((),)
            continue
        axis = next(i for i in range(k) if cu[i] != cv[i])
        lo, hi = cu[axis], cv[axis]
        if (hi - lo) % (1 << a) == 1:
            key, reverse = (lo, (lo + 1) % (1 << a)), False
        else:
            key, reverse = (hi, (hi + 1) % (1 << a)), True
        base_paths = axis_paths[key]
        base_steps = axis_steps[key]
        rest = vertex_map[u] & ~(((1 << a) - 1) << (axis * a))
        phase_key = (cu, cv)
        phase = phase_count.get(phase_key, 0)
        phase_count[phase_key] = phase + 1
        paths = []
        steps = []
        for p, st in zip(base_paths, base_steps):
            nodes = [rest | (x << (axis * a)) for x in p]
            if reverse:
                # Reverse traffic mirrors the forward schedule into steps
                # 4..6: hop j of the reversed path is the reversal of forward
                # hop (len - j), so step 7 - s keeps the mirror conflict-free.
                # (The directions cannot share steps: both would claim the
                # same detour links at step 1.)
                nodes = nodes[::-1]
                st = tuple(7 - s for s in reversed(st))
            paths.append(tuple(nodes))
            steps.append(tuple(s + 6 * phase for s in st))
        edge_paths[(u, v)] = tuple(paths)
        step_of[(u, v)] = tuple(steps)

    load = 1
    if squared_map is not None:
        from collections import Counter

        load = max(Counter(vertex_map.values()).values())
    emb = MultiPathEmbedding(
        host,
        guest,
        vertex_map,
        edge_paths,
        name=f"grid-multipath-{'x'.join(map(str, dims))}",
        load_allowed=load,
        step_of=step_of,
    )
    emb.info = {
        "k": k,
        "axis_bits": a,
        "width": width,
        "cost": 3,
        "load": load,
        "claim": corollary1_claim(k, max(dims)),
        "expansion": host.num_nodes
        / (1 << max(0, math.ceil(math.log2(max(1, guest.num_vertices))))),
    }
    return emb
