"""Vectorized embedding verification kernels + the dict-based referee.

The hot path of ``verify()`` at scale is hop validation and congestion
counting over every host path an embedding carries — millions of hops for
``Q_18``/``Q_20`` constructions.  The kernels here run that path as numpy
array programs over the shared :mod:`repro.hypercube.pathcode` encoding
(one flattened node vector + offsets per batch, built once): hop legality
is an XOR-popcount test, congestion is one ``bincount``, edge-disjointness
is sorted-duplicate detection, and dilation/load are array reductions.

The scalar dict-based implementations are *kept* as ``reference_verify_*``
— they share no arrays with the kernels, which makes them the referee of
the QA differential stage: every fuzzed embedding's vectorized report must
agree check-for-check and metric-for-metric with the referee's (see
:func:`repro.qa.differential.verification_differential`).

Both implementations produce the same
:class:`~repro.core.verification.VerificationReport` shape: the same check
names in the same order, stopping at the first failure, and the same
``metrics`` (Python scalars) for a passing report.  Failure *details* can
differ only when several invariants are broken at once — the vectorized
kernels test a whole batch per invariant while the referee walks hop by
hop, so they may name different offenders; the failing check's name and
the report's verdict always match.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.embedding import MultiCopyEmbedding, MultiPathEmbedding
from repro.core.verification import InvariantCheck, VerificationReport
from repro.hypercube.pathcode import (
    CSR_FLAG_DTYPE,
    CSR_NODE_DTYPE,
    CSR_OFFSET_DTYPE,
    flatten_paths,
    gather_paths,
    hop_endpoints,
)
from repro.obs.profile import profile_span

__all__ = [
    "EdgeLookup",
    "PathCSR",
    "build_edge_lookup",
    "embedding_csr",
    "verify_embedding",
    "verify_multipath",
    "reference_verify_embedding",
    "reference_verify_multipath",
]


def _path_edge_ids(host: Any, path: Sequence[int]) -> List[int]:
    """Directed host edge ids along a path (raises on non-edges)."""
    return [host.edge_id(a, b) for a, b in zip(path, path[1:])]


# -- vectorized kernels -------------------------------------------------------


def _first_invalid_hop(
    host: Any, heads: np.ndarray, tails: np.ndarray
) -> Optional[Tuple[int, str]]:
    """First hop that is not a directed host edge, with its error message.

    Mirrors :meth:`Hypercube.dimension_of`'s per-hop order exactly:
    power-of-two XOR first, then head range, then tail range — so the
    message matches what the scalar referee raises for the same hop.
    """
    if heads.size == 0:
        return None
    x = heads ^ tails
    bad_pow = (x == 0) | ((x & (x - 1)) != 0)
    oob_head = (heads < 0) | (heads >= host.num_nodes)
    oob_tail = (tails < 0) | (tails >= host.num_nodes)
    bad = bad_pow | oob_head | oob_tail
    if not np.any(bad):
        return None
    i = int(np.argmax(bad))
    u, v = int(heads[i]), int(tails[i])
    if bad_pow[i]:
        return i, f"({u}, {v}) is not a hypercube edge"
    if oob_head[i]:
        return i, f"node {u} out of range for Q_{host.n}"
    return i, f"node {v} out of range for Q_{host.n}"


def _edge_ids(host: Any, heads: np.ndarray, tails: np.ndarray) -> np.ndarray:
    """Packed edge ids of pre-validated hops (log2 is exact and warning-free)."""
    x = (heads ^ tails).astype(np.float64)
    return heads * np.int64(host.n) + np.log2(x).astype(np.int64)


def verify_embedding(
    emb: Any, max_load: Optional[int] = None, strict: bool = True
) -> VerificationReport:
    """Vectorized verification of a classical :class:`~repro.core.embedding.Embedding`.

    Same invariants, order, and report shape as
    :func:`reference_verify_embedding`: vertex-map, load, edge-paths,
    hops-are-edges, stopping at the first failure; a passing report carries
    load/dilation/congestion/expansion.
    """
    name = emb.name or "embedding"
    if max_load is None:
        max_load = math.ceil(emb.guest.num_vertices / emb.host.num_nodes)
    checks: List[InvariantCheck] = []

    def fail(check: str, detail: str) -> VerificationReport:
        checks.append(InvariantCheck(check, False, detail))
        report = VerificationReport(name, tuple(checks))
        return report.raise_if_failed() if strict else report

    with profile_span("verify.embedding", subject=name):
        images: Counter = Counter()
        for v in emb.guest.vertices():
            if v not in emb.vertex_map:
                return fail("vertex-map", f"guest vertex {v} is unmapped")
            node = emb.vertex_map[v]
            if not 0 <= node < emb.host.num_nodes:
                return fail("vertex-map", f"image {node} of {v} out of host range")
            images[node] += 1
        checks.append(InvariantCheck("vertex-map", True))
        measured_load = max(images.values()) if images else 0
        if measured_load > max_load:
            return fail("load", f"load {measured_load} exceeds allowed {max_load}")
        checks.append(
            InvariantCheck("load", True, f"load {measured_load} <= {max_load}")
        )

        paths: List[Tuple[int, ...]] = []
        edges: List[Tuple[Any, Any]] = []
        for (u, v) in emb.guest.edges():
            path = emb.edge_paths.get((u, v))
            if path is None:
                return fail("edge-paths", f"guest edge ({u}, {v}) has no path")
            if path[0] != emb.vertex_map[u] or path[-1] != emb.vertex_map[v]:
                return fail("edge-paths", f"path for ({u}, {v}) has wrong endpoints")
            paths.append(path)
            edges.append((u, v))
        checks.append(InvariantCheck("edge-paths", True))

        nodes, offsets = flatten_paths(paths)
        heads, tails = hop_endpoints(nodes, offsets)
        invalid = _first_invalid_hop(emb.host, heads, tails)
        if invalid is not None:
            hop_idx, msg = invalid
            lengths = np.diff(offsets) - 1
            hop_starts = np.cumsum(lengths) - lengths
            which = int(np.searchsorted(hop_starts, hop_idx, side="right") - 1)
            u, v = edges[which]
            return fail("hops-are-edges", f"path for ({u}, {v}): {msg}")
        checks.append(InvariantCheck("hops-are-edges", True))

        # The metric contract follows the dilation/congestion properties:
        # they measure every path in ``edge_paths``, which can be a superset
        # of the guest edges just verified.  Reuse the verified batch when
        # the dict holds exactly the guest edges (the invariable case for
        # the package's builders); otherwise fall back to the properties.
        if len(emb.edge_paths) == len(paths):
            lengths = np.diff(offsets) - 1
            dilation = int(lengths.max()) if lengths.size else 0
            if heads.size:
                congestion = int(np.bincount(_edge_ids(emb.host, heads, tails)).max())
            else:
                congestion = 0
        else:
            dilation, congestion = emb.dilation, emb.congestion
        return VerificationReport(
            name,
            tuple(checks),
            metrics={
                "load": measured_load,
                "max_load_allowed": max_load,
                "dilation": dilation,
                "congestion": congestion,
                "expansion": emb.expansion,
            },
        )


def verify_multipath(emb: Any, strict: bool = True) -> VerificationReport:
    """Vectorized verification of a width-w :class:`MultiPathEmbedding`.

    Same invariants, order, and report shape as
    :func:`reference_verify_multipath`: vertex-map, load, edge-paths,
    hops-are-edges, edge-disjoint.  Every path of every bundle is flattened
    into one node vector; endpoints come from offset gathers, hop legality
    from one XOR-popcount pass, edge-disjointness from sorted-duplicate
    detection on ``guest_edge * num_edges + edge_id`` keys, and congestion
    from one ``bincount`` of the same edge-id vector.
    """
    name = emb.name or "multipath-embedding"
    checks: List[InvariantCheck] = []

    def fail(check: str, detail: str) -> VerificationReport:
        checks.append(InvariantCheck(check, False, detail))
        report = VerificationReport(name, tuple(checks))
        return report.raise_if_failed() if strict else report

    def done(metrics: Dict[str, Any]) -> VerificationReport:
        return VerificationReport(name, tuple(checks), metrics)

    with profile_span("verify.multipath", subject=name):
        images = Counter(emb.vertex_map.values())
        for v in emb.guest.vertices():
            if v not in emb.vertex_map:
                return fail("vertex-map", f"guest vertex {v} is unmapped")
        checks.append(InvariantCheck("vertex-map", True))
        measured_load = max(images.values()) if images else 0
        if measured_load > emb.load_allowed:
            return fail(
                "load", f"load {measured_load} exceeds allowed {emb.load_allowed}"
            )
        checks.append(
            InvariantCheck(
                "load", True, f"load {measured_load} <= {emb.load_allowed}"
            )
        )

        flat: List[Tuple[int, ...]] = []
        bundle_sizes: List[int] = []
        exp_src: List[int] = []
        exp_dst: List[int] = []
        gedges: List[Tuple[Any, Any]] = []
        min_width = None
        for (u, v) in emb.guest.edges():
            bundle = emb.edge_paths.get((u, v))
            if not bundle:
                return fail("edge-paths", f"guest edge ({u}, {v}) has no paths")
            if min_width is None or len(bundle) < min_width:
                min_width = len(bundle)
            flat.extend(bundle)
            bundle_sizes.append(len(bundle))
            exp_src.append(emb.vertex_map[u])
            exp_dst.append(emb.vertex_map[v])
            gedges.append((u, v))

        nodes, offsets = flatten_paths(flat)
        node_counts = np.diff(offsets)
        if np.any(node_counts == 0):
            # an empty path tuple: the scalar referee's p[0] raises this
            raise IndexError("tuple index out of range")
        sizes = np.asarray(bundle_sizes, dtype=np.int64)
        path_group = np.repeat(np.arange(len(gedges), dtype=np.int64), sizes)
        first = nodes[offsets[:-1]]
        last = nodes[offsets[1:] - 1]
        bad_end = (first != np.asarray(exp_src, dtype=np.int64)[path_group]) | (
            last != np.asarray(exp_dst, dtype=np.int64)[path_group]
        )
        if np.any(bad_end):
            j = int(np.argmax(bad_end))
            u, v = gedges[int(path_group[j])]
            return fail(
                "edge-paths", f"path for ({u}, {v}) has wrong endpoints: {flat[j]}"
            )
        checks.append(InvariantCheck("edge-paths", True))

        base_metrics: Dict[str, Any] = {
            "width": min_width or 0,
            "load": measured_load,
            "max_load_allowed": emb.load_allowed,
            "expansion": emb.expansion,
        }
        heads, tails = hop_endpoints(nodes, offsets)
        if heads.size == 0:
            checks.append(InvariantCheck("hops-are-edges", True))
            checks.append(InvariantCheck("edge-disjoint", True))
            return done({**base_metrics, "dilation": 0, "congestion": 0})
        if int(heads.min()) < 0 or max(int(heads.max()), int(tails.max())) >= emb.host.num_nodes:
            return fail("hops-are-edges", "path node out of host range")
        x = heads ^ tails
        bad_hop = (x == 0) | ((x & (x - 1)) != 0)
        if np.any(bad_hop):
            b = int(np.argmax(bad_hop))
            return fail(
                "hops-are-edges",
                f"({int(heads[b])}, {int(tails[b])}) is not a hypercube edge",
            )
        checks.append(InvariantCheck("hops-are-edges", True))

        eids = heads * np.int64(emb.host.n) + np.log2(
            x.astype(np.float64)
        ).astype(np.int64)
        hops_per_path = node_counts - 1
        hop_group = np.repeat(path_group, hops_per_path)
        keys = hop_group * np.int64(emb.host.num_edges) + eids
        uniq, counts = np.unique(keys, return_counts=True)
        if uniq.size != keys.size:
            key = int(uniq[np.argmax(counts > 1)])
            return fail(
                "edge-disjoint",
                f"guest edge #{key // emb.host.num_edges} reuses directed "
                f"host edge {key % emb.host.num_edges} across its paths",
            )
        checks.append(InvariantCheck("edge-disjoint", True))
        # every (guest edge, host edge) pair is unique past this point, so a
        # bincount of the edge-id vector IS the per-host-edge congestion
        return done(
            {
                **base_metrics,
                "dilation": int(hops_per_path.max()),
                "congestion": int(np.bincount(eids).max()),
            }
        )


# -- scalar dict-based referee ------------------------------------------------


def reference_verify_embedding(
    emb: Any, max_load: Optional[int] = None, strict: bool = True
) -> VerificationReport:
    """The scalar dict-walking verifier for :class:`Embedding` (QA referee)."""
    if max_load is None:
        max_load = math.ceil(emb.guest.num_vertices / emb.host.num_nodes)
    checks: List[InvariantCheck] = []

    def fail(check: str, detail: str) -> VerificationReport:
        checks.append(InvariantCheck(check, False, detail))
        report = VerificationReport(emb.name or "embedding", tuple(checks))
        return report.raise_if_failed() if strict else report

    images: Counter = Counter()
    for v in emb.guest.vertices():
        if v not in emb.vertex_map:
            return fail("vertex-map", f"guest vertex {v} is unmapped")
        node = emb.vertex_map[v]
        if not 0 <= node < emb.host.num_nodes:
            return fail("vertex-map", f"image {node} of {v} out of host range")
        images[node] += 1
    checks.append(InvariantCheck("vertex-map", True))
    measured_load = max(images.values()) if images else 0
    if measured_load > max_load:
        return fail("load", f"load {measured_load} exceeds allowed {max_load}")
    checks.append(
        InvariantCheck("load", True, f"load {measured_load} <= {max_load}")
    )
    for (u, v) in emb.guest.edges():
        path = emb.edge_paths.get((u, v))
        if path is None:
            return fail("edge-paths", f"guest edge ({u}, {v}) has no path")
        if path[0] != emb.vertex_map[u] or path[-1] != emb.vertex_map[v]:
            return fail("edge-paths", f"path for ({u}, {v}) has wrong endpoints")
    checks.append(InvariantCheck("edge-paths", True))
    for (u, v) in emb.guest.edges():
        try:
            _path_edge_ids(emb.host, emb.edge_paths[(u, v)])
        except ValueError as err:
            return fail("hops-are-edges", f"path for ({u}, {v}): {err}")
    checks.append(InvariantCheck("hops-are-edges", True))
    return VerificationReport(
        emb.name or "embedding",
        tuple(checks),
        metrics={
            "load": measured_load,
            "max_load_allowed": max_load,
            "dilation": emb.dilation,
            "congestion": emb.congestion,
            "expansion": emb.expansion,
        },
    )


def reference_verify_multipath(emb: Any, strict: bool = True) -> VerificationReport:
    """The scalar dict/set-based verifier for :class:`MultiPathEmbedding`.

    Kept deliberately free of numpy: edge ids come from
    :meth:`Hypercube.edge_id` one hop at a time, disjointness from per-bundle
    ``Counter`` duplicates, congestion from a global ``Counter`` over each
    bundle's used-edge set.  Report-shape-identical to
    :func:`verify_multipath` — this is what the QA differential referees
    the vectorized kernel against.
    """
    name = emb.name or "multipath-embedding"
    checks: List[InvariantCheck] = []

    def fail(check: str, detail: str) -> VerificationReport:
        checks.append(InvariantCheck(check, False, detail))
        report = VerificationReport(name, tuple(checks))
        return report.raise_if_failed() if strict else report

    images = Counter(emb.vertex_map.values())
    for v in emb.guest.vertices():
        if v not in emb.vertex_map:
            return fail("vertex-map", f"guest vertex {v} is unmapped")
    checks.append(InvariantCheck("vertex-map", True))
    measured_load = max(images.values()) if images else 0
    if measured_load > emb.load_allowed:
        return fail(
            "load", f"load {measured_load} exceeds allowed {emb.load_allowed}"
        )
    checks.append(
        InvariantCheck("load", True, f"load {measured_load} <= {emb.load_allowed}")
    )

    bundles: List[Tuple[Tuple[Any, Any], Tuple[Tuple[int, ...], ...]]] = []
    min_width = None
    for (u, v) in emb.guest.edges():
        bundle = emb.edge_paths.get((u, v))
        if not bundle:
            return fail("edge-paths", f"guest edge ({u}, {v}) has no paths")
        if min_width is None or len(bundle) < min_width:
            min_width = len(bundle)
        hu, hv = emb.vertex_map[u], emb.vertex_map[v]
        for p in bundle:
            if p[0] != hu or p[-1] != hv:
                return fail(
                    "edge-paths", f"path for ({u}, {v}) has wrong endpoints: {p}"
                )
        bundles.append(((u, v), bundle))
    checks.append(InvariantCheck("edge-paths", True))

    base_metrics: Dict[str, Any] = {
        "width": min_width or 0,
        "load": measured_load,
        "max_load_allowed": emb.load_allowed,
        "expansion": emb.expansion,
    }
    total_hops = 0
    for _, bundle in bundles:
        for p in bundle:
            total_hops += len(p) - 1
            for a, b in zip(p, p[1:]):
                if not (
                    0 <= a < emb.host.num_nodes and 0 <= b < emb.host.num_nodes
                ):
                    return fail("hops-are-edges", "path node out of host range")
                x = a ^ b
                if x == 0 or (x & (x - 1)) != 0:
                    return fail(
                        "hops-are-edges", f"({a}, {b}) is not a hypercube edge"
                    )
    if total_hops == 0:
        checks.append(InvariantCheck("hops-are-edges", True))
        checks.append(InvariantCheck("edge-disjoint", True))
        return VerificationReport(
            name,
            tuple(checks),
            {**base_metrics, "dilation": 0, "congestion": 0},
        )
    checks.append(InvariantCheck("hops-are-edges", True))

    duplicate_keys: List[int] = []
    per_host_edge: Counter = Counter()
    dilation = 0
    for idx, (_, bundle) in enumerate(bundles):
        seen: Counter = Counter()
        for p in bundle:
            dilation = max(dilation, len(p) - 1)
            for eid in _path_edge_ids(emb.host, p):
                seen[eid] += 1
        duplicate_keys.extend(
            idx * emb.host.num_edges + eid
            for eid, count in seen.items()
            if count > 1
        )
        per_host_edge.update(seen.keys())
    if duplicate_keys:
        key = min(duplicate_keys)
        return fail(
            "edge-disjoint",
            f"guest edge #{key // emb.host.num_edges} reuses directed "
            f"host edge {key % emb.host.num_edges} across its paths",
        )
    checks.append(InvariantCheck("edge-disjoint", True))
    return VerificationReport(
        name,
        tuple(checks),
        {
            **base_metrics,
            "dilation": dilation,
            "congestion": max(per_host_edge.values()) if per_host_edge else 0,
        },
    )


# -- CSR export for the serving layer -----------------------------------------


def _rev(edge: Any) -> Any:
    u, v = edge
    return (v, u)


@dataclass(frozen=True)
class EdgeLookup:
    """Vectorized guest-edge resolver for integer-vertex embeddings.

    Packs each orientation of every bundle's canonical edge into one
    ``u * base + v`` key and answers a whole request batch with a single
    ``searchsorted`` — no per-request dict lookups and, crucially, no
    upfront Python loop over a million edges.  The three arrays are plain
    contract-dtype vectors, so the artifact store serializes them next to
    the CSR payload and a memmapped embedding resolves requests O(ms)
    after open.  Semantics match :attr:`PathCSR.edge_index`: stored
    orientations always win over reverse fallbacks.
    """

    base: int  # vertex ids live in [0, base)
    keys: np.ndarray  # sorted packed keys, CSR_NODE_DTYPE
    gids: np.ndarray  # bundle id per key, CSR_OFFSET_DTYPE
    flips: np.ndarray  # reverse-orientation flag per key, CSR_FLAG_DTYPE

    def resolve_packed(
        self, us: np.ndarray, vs: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(gids, flips, known)`` for endpoint arrays ``us -> vs``."""
        known = (us >= 0) & (us < self.base) & (vs >= 0) & (vs < self.base)
        # out-of-range endpoints can alias another edge's key, so mask
        # them to a key no edge packs to before the binary search
        k = np.where(known, us * np.int64(self.base) + vs, np.int64(-1))
        if self.keys.size == 0:
            return (
                np.zeros(us.size, dtype=CSR_OFFSET_DTYPE),
                np.zeros(us.size, dtype=CSR_FLAG_DTYPE),
                np.zeros(us.size, dtype=bool),
            )
        idx = np.minimum(
            np.searchsorted(self.keys, k), self.keys.size - 1
        )
        known &= self.keys[idx] == k
        return self.gids[idx], self.flips[idx], known


def build_edge_lookup(edge_uv: np.ndarray) -> EdgeLookup:
    """The :class:`EdgeLookup` of a ``(num_bundles, 2)`` endpoint array.

    Forward orientations win ties against reverse fallbacks (the stable
    sort keeps the forward block first), and among several reverse
    claims on one key the lowest bundle id wins — both exactly as the
    dict-based :attr:`PathCSR.edge_index` resolves them.
    """
    edge_uv = np.ascontiguousarray(edge_uv, dtype=np.int64)
    count = edge_uv.shape[0]
    if count == 0:
        return EdgeLookup(
            base=1,
            keys=np.zeros(0, dtype=CSR_NODE_DTYPE),
            gids=np.zeros(0, dtype=CSR_OFFSET_DTYPE),
            flips=np.zeros(0, dtype=CSR_FLAG_DTYPE),
        )
    us, vs = edge_uv[:, 0], edge_uv[:, 1]
    if int(min(us.min(), vs.min())) < 0:
        raise ValueError("edge lookup requires non-negative vertex ids")
    base = int(max(us.max(), vs.max())) + 1
    ids = np.arange(count, dtype=CSR_OFFSET_DTYPE)
    keys = np.concatenate([us * base + vs, vs * base + us])
    gids = np.concatenate([ids, ids])
    flips = np.concatenate(
        [
            np.zeros(count, dtype=CSR_FLAG_DTYPE),
            np.ones(count, dtype=CSR_FLAG_DTYPE),
        ]
    )
    order = np.argsort(keys, kind="stable")
    keys, gids, flips = keys[order], gids[order], flips[order]
    keep = np.ones(keys.size, dtype=bool)
    keep[1:] = keys[1:] != keys[:-1]
    return EdgeLookup(
        base=base,
        keys=np.ascontiguousarray(keys[keep], dtype=CSR_NODE_DTYPE),
        gids=np.ascontiguousarray(gids[keep], dtype=CSR_OFFSET_DTYPE),
        flips=np.ascontiguousarray(flips[keep], dtype=CSR_FLAG_DTYPE),
    )


@dataclass(frozen=True)
class PathCSR:
    """The flat, shareable form of an embedding's routing answer.

    All the host paths an embedding carries, concatenated into the
    :func:`~repro.hypercube.pathcode.flatten_paths` layout and grouped into
    per-guest-edge *bundles* so a routing request is two offset lookups plus
    one gather — no dict-of-tuples walking, no per-path Python.  The arrays
    obey the pathcode dtype contract (``CSR_NODE_DTYPE`` /
    ``CSR_OFFSET_DTYPE`` / ``CSR_FLAG_DTYPE``), which is what the
    shared-memory shard layer checks before mapping a segment zero-copy.

    ``path_reversed[p]`` says path ``p`` is stored against its bundle's
    canonical orientation (it came from a :class:`MultiCopyEmbedding` copy
    that holds only the reverse edge); serving the reversed guest edge
    XORs one more flip on top, so both orientations resolve from the same
    stored bytes.
    """

    host_n: int
    edges: Tuple[Any, ...]  # canonical guest edge of each bundle
    nodes: np.ndarray  # CSR_NODE_DTYPE, concatenated path nodes
    path_offsets: np.ndarray  # CSR_OFFSET_DTYPE, num_paths + 1
    bundle_offsets: np.ndarray  # CSR_OFFSET_DTYPE, num_bundles + 1
    path_reversed: np.ndarray = field(repr=False)  # CSR_FLAG_DTYPE
    # optional vectorized resolver (integer-vertex guests only); the
    # artifact store attaches one from memmapped arrays so resolution
    # never walks a million-edge Python loop
    lookup: Optional[EdgeLookup] = field(default=None, repr=False)

    @property
    def num_paths(self) -> int:
        return int(self.path_offsets.size - 1)

    @property
    def num_bundles(self) -> int:
        return int(self.bundle_offsets.size - 1)

    @cached_property
    def edge_index(self) -> Dict[Any, Tuple[int, bool]]:
        """Both orientations of every guest edge -> ``(bundle id, flip)``.

        Stored orientations always win: the reverse fallback is added only
        for orientations no bundle claims directly, mirroring
        :func:`repro.service.api.disjoint_paths`'s forward-then-reverse
        lookup order.
        """
        index: Dict[Any, Tuple[int, bool]] = {}
        for gid, edge in enumerate(self.edges):
            index[edge] = (gid, False)
        for gid, edge in enumerate(self.edges):
            reverse = _rev(edge)
            if reverse not in index:
                index[reverse] = (gid, True)
        return index

    def resolve(
        self, guest_edges: Sequence[Any]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Selected ``(path_ids, flips, request_offsets)`` for a request batch.

        The only per-request Python is one dict lookup; everything after is
        offset arithmetic.  Raises ``KeyError`` with the same shape of
        message as per-call routing when an edge is unknown in *both*
        orientations.
        """
        count = len(guest_edges)
        resolved = (
            self._resolve_vectorized(guest_edges)
            if self.lookup is not None
            else None
        )
        if resolved is not None:
            gids, flips = resolved
        else:
            gids = np.empty(count, dtype=CSR_OFFSET_DTYPE)
            flips = np.empty(count, dtype=CSR_FLAG_DTYPE)
            index = self.edge_index
            for i, edge in enumerate(guest_edges):
                hit = index.get(edge)
                if hit is None:
                    self._raise_unknown(edge)
                gids[i] = hit[0]
                flips[i] = hit[1]
        starts = self.bundle_offsets[gids]
        widths = self.bundle_offsets[gids + 1] - starts
        request_offsets = np.zeros(count + 1, dtype=CSR_OFFSET_DTYPE)
        np.cumsum(widths, out=request_offsets[1:])
        total = int(request_offsets[-1])
        within = np.arange(total, dtype=np.int64) - np.repeat(
            request_offsets[:-1], widths
        )
        path_ids = np.repeat(starts, widths) + within
        flip = self.path_reversed[path_ids].astype(bool) ^ np.repeat(
            flips, widths
        ).astype(bool)
        return path_ids, flip, request_offsets

    def _raise_unknown(self, edge: Any) -> None:
        sample = self.edges[0] if len(self.edges) else None
        raise KeyError(
            f"guest edge {edge!r} not in embedding "
            f"(edges look like {sample!r})"
        )

    def _resolve_vectorized(
        self, guest_edges: Sequence[Any]
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(gids, flips)`` via the packed lookup; None if not packable."""
        lookup = self.lookup
        if lookup is None:
            return None
        try:
            batch = np.asarray(guest_edges, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            return None
        if batch.ndim != 2 or batch.shape[1] != 2:
            return None
        gids, flips, known = lookup.resolve_packed(batch[:, 0], batch[:, 1])
        if not bool(known.all()):
            bad = int(np.argmin(known))
            self._raise_unknown(guest_edges[bad])
        return (
            np.ascontiguousarray(gids, dtype=CSR_OFFSET_DTYPE),
            np.ascontiguousarray(flips, dtype=CSR_FLAG_DTYPE),
        )

    def take(
        self, guest_edges: Sequence[Any]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gathered ``(nodes, path_offsets, request_offsets)`` for a batch.

        Request ``i`` owns paths ``request_offsets[i]:request_offsets[i+1]``
        of the output layout, each already oriented source -> destination
        for the *requested* edge direction.
        """
        path_ids, flip, request_offsets = self.resolve(guest_edges)
        out_nodes, out_offsets = gather_paths(
            self.nodes, self.path_offsets, path_ids, reverse=flip
        )
        return out_nodes, out_offsets, request_offsets

    def nbytes(self) -> int:
        """Total payload bytes under the dtype contract (header excluded)."""
        return int(
            self.nodes.nbytes
            + self.path_offsets.nbytes
            + self.bundle_offsets.nbytes
            + self.path_reversed.nbytes
        )


def _leaf_edge_paths(emb: Any, out: List[Dict[Any, Tuple[Tuple[int, ...], ...]]]) -> None:
    """Flatten an embedding into per-copy ``{edge: (path, ...)}`` dicts.

    Multi-copy embeddings contribute one dict per (recursively flattened)
    copy, in copy order — the same order per-call routing walks them.
    """
    if isinstance(emb, MultiCopyEmbedding):
        for copy in emb.copies:
            _leaf_edge_paths(copy, out)
        return
    if isinstance(emb, MultiPathEmbedding):
        out.append(
            {edge: tuple(tuple(p) for p in bundle) for edge, bundle in emb.edge_paths.items()}
        )
        return
    out.append({edge: (tuple(path),) for edge, path in emb.edge_paths.items()})


def embedding_csr(emb: Any) -> PathCSR:
    """Export an embedding's full routing answer as a :class:`PathCSR`.

    Bundle order and per-bundle path order match what
    :func:`repro.service.api.disjoint_paths` returns per call, so batch
    results are field-identical to per-call results.  Orientations merge
    into one bundle (with per-path reverse flags) exactly when no single
    copy stores both directions as distinct guest edges; a copy that
    *does* store both keeps them as separate bundles, because flipping one
    cannot reproduce the other.
    """
    leaves: List[Dict[Any, Tuple[Tuple[int, ...], ...]]] = []
    _leaf_edge_paths(emb, leaves)
    # edges whose pair appears in both orientations inside one leaf must
    # stay distinct bundles in both orientations
    split: Set[Any] = set()
    for leaf in leaves:
        for edge in leaf:
            if _rev(edge) in leaf and _rev(edge) != edge:
                split.add(edge)
    canonical: List[Any] = []
    seen: Set[Any] = set()
    for leaf in leaves:
        for edge in leaf:
            if edge in seen:
                continue
            if _rev(edge) in seen and edge not in split and _rev(edge) not in split:
                continue  # merged into the first-seen orientation
            seen.add(edge)
            canonical.append(edge)

    paths: List[Tuple[int, ...]] = []
    flags: List[bool] = []
    bundle_sizes: List[int] = []
    for edge in canonical:
        reverse = _rev(edge)
        size = 0
        for leaf in leaves:
            bundle = leaf.get(edge)
            if bundle is not None:
                paths.extend(bundle)
                flags.extend(False for _ in bundle)
                size += len(bundle)
                continue
            bundle = leaf.get(reverse)
            if bundle is not None:
                paths.extend(bundle)
                flags.extend(True for _ in bundle)
                size += len(bundle)
        bundle_sizes.append(size)

    nodes, path_offsets = flatten_paths(paths)
    bundle_offsets = np.zeros(len(canonical) + 1, dtype=CSR_OFFSET_DTYPE)
    np.cumsum(np.asarray(bundle_sizes, dtype=np.int64), out=bundle_offsets[1:])
    return PathCSR(
        host_n=emb.host.n,
        edges=tuple(canonical),
        nodes=nodes.astype(CSR_NODE_DTYPE, copy=False),
        path_offsets=path_offsets.astype(CSR_OFFSET_DTYPE, copy=False),
        bundle_offsets=bundle_offsets,
        path_reversed=np.asarray(flags, dtype=CSR_FLAG_DTYPE),
    )
