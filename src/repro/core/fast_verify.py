"""Vectorized embedding verification kernels + the dict-based referee.

The hot path of ``verify()`` at scale is hop validation and congestion
counting over every host path an embedding carries — millions of hops for
``Q_18``/``Q_20`` constructions.  The kernels here run that path as numpy
array programs over the shared :mod:`repro.hypercube.pathcode` encoding
(one flattened node vector + offsets per batch, built once): hop legality
is an XOR-popcount test, congestion is one ``bincount``, edge-disjointness
is sorted-duplicate detection, and dilation/load are array reductions.

The scalar dict-based implementations are *kept* as ``reference_verify_*``
— they share no arrays with the kernels, which makes them the referee of
the QA differential stage: every fuzzed embedding's vectorized report must
agree check-for-check and metric-for-metric with the referee's (see
:func:`repro.qa.differential.verification_differential`).

Both implementations produce the same
:class:`~repro.core.verification.VerificationReport` shape: the same check
names in the same order, stopping at the first failure, and the same
``metrics`` (Python scalars) for a passing report.  Failure *details* can
differ only when several invariants are broken at once — the vectorized
kernels test a whole batch per invariant while the referee walks hop by
hop, so they may name different offenders; the failing check's name and
the report's verdict always match.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.verification import InvariantCheck, VerificationReport
from repro.hypercube.pathcode import flatten_paths, hop_endpoints
from repro.obs.profile import profile_span

__all__ = [
    "verify_embedding",
    "verify_multipath",
    "reference_verify_embedding",
    "reference_verify_multipath",
]


def _path_edge_ids(host: Any, path: Sequence[int]) -> List[int]:
    """Directed host edge ids along a path (raises on non-edges)."""
    return [host.edge_id(a, b) for a, b in zip(path, path[1:])]


# -- vectorized kernels -------------------------------------------------------


def _first_invalid_hop(
    host: Any, heads: np.ndarray, tails: np.ndarray
) -> Optional[Tuple[int, str]]:
    """First hop that is not a directed host edge, with its error message.

    Mirrors :meth:`Hypercube.dimension_of`'s per-hop order exactly:
    power-of-two XOR first, then head range, then tail range — so the
    message matches what the scalar referee raises for the same hop.
    """
    if heads.size == 0:
        return None
    x = heads ^ tails
    bad_pow = (x == 0) | ((x & (x - 1)) != 0)
    oob_head = (heads < 0) | (heads >= host.num_nodes)
    oob_tail = (tails < 0) | (tails >= host.num_nodes)
    bad = bad_pow | oob_head | oob_tail
    if not np.any(bad):
        return None
    i = int(np.argmax(bad))
    u, v = int(heads[i]), int(tails[i])
    if bad_pow[i]:
        return i, f"({u}, {v}) is not a hypercube edge"
    if oob_head[i]:
        return i, f"node {u} out of range for Q_{host.n}"
    return i, f"node {v} out of range for Q_{host.n}"


def _edge_ids(host: Any, heads: np.ndarray, tails: np.ndarray) -> np.ndarray:
    """Packed edge ids of pre-validated hops (log2 is exact and warning-free)."""
    x = (heads ^ tails).astype(np.float64)
    return heads * np.int64(host.n) + np.log2(x).astype(np.int64)


def verify_embedding(
    emb: Any, max_load: Optional[int] = None, strict: bool = True
) -> VerificationReport:
    """Vectorized verification of a classical :class:`~repro.core.embedding.Embedding`.

    Same invariants, order, and report shape as
    :func:`reference_verify_embedding`: vertex-map, load, edge-paths,
    hops-are-edges, stopping at the first failure; a passing report carries
    load/dilation/congestion/expansion.
    """
    name = emb.name or "embedding"
    if max_load is None:
        max_load = math.ceil(emb.guest.num_vertices / emb.host.num_nodes)
    checks: List[InvariantCheck] = []

    def fail(check: str, detail: str) -> VerificationReport:
        checks.append(InvariantCheck(check, False, detail))
        report = VerificationReport(name, tuple(checks))
        return report.raise_if_failed() if strict else report

    with profile_span("verify.embedding", subject=name):
        images: Counter = Counter()
        for v in emb.guest.vertices():
            if v not in emb.vertex_map:
                return fail("vertex-map", f"guest vertex {v} is unmapped")
            node = emb.vertex_map[v]
            if not 0 <= node < emb.host.num_nodes:
                return fail("vertex-map", f"image {node} of {v} out of host range")
            images[node] += 1
        checks.append(InvariantCheck("vertex-map", True))
        measured_load = max(images.values()) if images else 0
        if measured_load > max_load:
            return fail("load", f"load {measured_load} exceeds allowed {max_load}")
        checks.append(
            InvariantCheck("load", True, f"load {measured_load} <= {max_load}")
        )

        paths: List[Tuple[int, ...]] = []
        edges: List[Tuple[Any, Any]] = []
        for (u, v) in emb.guest.edges():
            path = emb.edge_paths.get((u, v))
            if path is None:
                return fail("edge-paths", f"guest edge ({u}, {v}) has no path")
            if path[0] != emb.vertex_map[u] or path[-1] != emb.vertex_map[v]:
                return fail("edge-paths", f"path for ({u}, {v}) has wrong endpoints")
            paths.append(path)
            edges.append((u, v))
        checks.append(InvariantCheck("edge-paths", True))

        nodes, offsets = flatten_paths(paths)
        heads, tails = hop_endpoints(nodes, offsets)
        invalid = _first_invalid_hop(emb.host, heads, tails)
        if invalid is not None:
            hop_idx, msg = invalid
            lengths = np.diff(offsets) - 1
            hop_starts = np.cumsum(lengths) - lengths
            which = int(np.searchsorted(hop_starts, hop_idx, side="right") - 1)
            u, v = edges[which]
            return fail("hops-are-edges", f"path for ({u}, {v}): {msg}")
        checks.append(InvariantCheck("hops-are-edges", True))

        # The metric contract follows the dilation/congestion properties:
        # they measure every path in ``edge_paths``, which can be a superset
        # of the guest edges just verified.  Reuse the verified batch when
        # the dict holds exactly the guest edges (the invariable case for
        # the package's builders); otherwise fall back to the properties.
        if len(emb.edge_paths) == len(paths):
            lengths = np.diff(offsets) - 1
            dilation = int(lengths.max()) if lengths.size else 0
            if heads.size:
                congestion = int(np.bincount(_edge_ids(emb.host, heads, tails)).max())
            else:
                congestion = 0
        else:
            dilation, congestion = emb.dilation, emb.congestion
        return VerificationReport(
            name,
            tuple(checks),
            metrics={
                "load": measured_load,
                "max_load_allowed": max_load,
                "dilation": dilation,
                "congestion": congestion,
                "expansion": emb.expansion,
            },
        )


def verify_multipath(emb: Any, strict: bool = True) -> VerificationReport:
    """Vectorized verification of a width-w :class:`MultiPathEmbedding`.

    Same invariants, order, and report shape as
    :func:`reference_verify_multipath`: vertex-map, load, edge-paths,
    hops-are-edges, edge-disjoint.  Every path of every bundle is flattened
    into one node vector; endpoints come from offset gathers, hop legality
    from one XOR-popcount pass, edge-disjointness from sorted-duplicate
    detection on ``guest_edge * num_edges + edge_id`` keys, and congestion
    from one ``bincount`` of the same edge-id vector.
    """
    name = emb.name or "multipath-embedding"
    checks: List[InvariantCheck] = []

    def fail(check: str, detail: str) -> VerificationReport:
        checks.append(InvariantCheck(check, False, detail))
        report = VerificationReport(name, tuple(checks))
        return report.raise_if_failed() if strict else report

    def done(metrics: Dict[str, Any]) -> VerificationReport:
        return VerificationReport(name, tuple(checks), metrics)

    with profile_span("verify.multipath", subject=name):
        images = Counter(emb.vertex_map.values())
        for v in emb.guest.vertices():
            if v not in emb.vertex_map:
                return fail("vertex-map", f"guest vertex {v} is unmapped")
        checks.append(InvariantCheck("vertex-map", True))
        measured_load = max(images.values()) if images else 0
        if measured_load > emb.load_allowed:
            return fail(
                "load", f"load {measured_load} exceeds allowed {emb.load_allowed}"
            )
        checks.append(
            InvariantCheck(
                "load", True, f"load {measured_load} <= {emb.load_allowed}"
            )
        )

        flat: List[Tuple[int, ...]] = []
        bundle_sizes: List[int] = []
        exp_src: List[int] = []
        exp_dst: List[int] = []
        gedges: List[Tuple[Any, Any]] = []
        min_width = None
        for (u, v) in emb.guest.edges():
            bundle = emb.edge_paths.get((u, v))
            if not bundle:
                return fail("edge-paths", f"guest edge ({u}, {v}) has no paths")
            if min_width is None or len(bundle) < min_width:
                min_width = len(bundle)
            flat.extend(bundle)
            bundle_sizes.append(len(bundle))
            exp_src.append(emb.vertex_map[u])
            exp_dst.append(emb.vertex_map[v])
            gedges.append((u, v))

        nodes, offsets = flatten_paths(flat)
        node_counts = np.diff(offsets)
        if np.any(node_counts == 0):
            # an empty path tuple: the scalar referee's p[0] raises this
            raise IndexError("tuple index out of range")
        sizes = np.asarray(bundle_sizes, dtype=np.int64)
        path_group = np.repeat(np.arange(len(gedges), dtype=np.int64), sizes)
        first = nodes[offsets[:-1]]
        last = nodes[offsets[1:] - 1]
        bad_end = (first != np.asarray(exp_src, dtype=np.int64)[path_group]) | (
            last != np.asarray(exp_dst, dtype=np.int64)[path_group]
        )
        if np.any(bad_end):
            j = int(np.argmax(bad_end))
            u, v = gedges[int(path_group[j])]
            return fail(
                "edge-paths", f"path for ({u}, {v}) has wrong endpoints: {flat[j]}"
            )
        checks.append(InvariantCheck("edge-paths", True))

        base_metrics: Dict[str, Any] = {
            "width": min_width or 0,
            "load": measured_load,
            "max_load_allowed": emb.load_allowed,
            "expansion": emb.expansion,
        }
        heads, tails = hop_endpoints(nodes, offsets)
        if heads.size == 0:
            checks.append(InvariantCheck("hops-are-edges", True))
            checks.append(InvariantCheck("edge-disjoint", True))
            return done({**base_metrics, "dilation": 0, "congestion": 0})
        if int(heads.min()) < 0 or max(int(heads.max()), int(tails.max())) >= emb.host.num_nodes:
            return fail("hops-are-edges", "path node out of host range")
        x = heads ^ tails
        bad_hop = (x == 0) | ((x & (x - 1)) != 0)
        if np.any(bad_hop):
            b = int(np.argmax(bad_hop))
            return fail(
                "hops-are-edges",
                f"({int(heads[b])}, {int(tails[b])}) is not a hypercube edge",
            )
        checks.append(InvariantCheck("hops-are-edges", True))

        eids = heads * np.int64(emb.host.n) + np.log2(
            x.astype(np.float64)
        ).astype(np.int64)
        hops_per_path = node_counts - 1
        hop_group = np.repeat(path_group, hops_per_path)
        keys = hop_group * np.int64(emb.host.num_edges) + eids
        uniq, counts = np.unique(keys, return_counts=True)
        if uniq.size != keys.size:
            key = int(uniq[np.argmax(counts > 1)])
            return fail(
                "edge-disjoint",
                f"guest edge #{key // emb.host.num_edges} reuses directed "
                f"host edge {key % emb.host.num_edges} across its paths",
            )
        checks.append(InvariantCheck("edge-disjoint", True))
        # every (guest edge, host edge) pair is unique past this point, so a
        # bincount of the edge-id vector IS the per-host-edge congestion
        return done(
            {
                **base_metrics,
                "dilation": int(hops_per_path.max()),
                "congestion": int(np.bincount(eids).max()),
            }
        )


# -- scalar dict-based referee ------------------------------------------------


def reference_verify_embedding(
    emb: Any, max_load: Optional[int] = None, strict: bool = True
) -> VerificationReport:
    """The scalar dict-walking verifier for :class:`Embedding` (QA referee)."""
    if max_load is None:
        max_load = math.ceil(emb.guest.num_vertices / emb.host.num_nodes)
    checks: List[InvariantCheck] = []

    def fail(check: str, detail: str) -> VerificationReport:
        checks.append(InvariantCheck(check, False, detail))
        report = VerificationReport(emb.name or "embedding", tuple(checks))
        return report.raise_if_failed() if strict else report

    images: Counter = Counter()
    for v in emb.guest.vertices():
        if v not in emb.vertex_map:
            return fail("vertex-map", f"guest vertex {v} is unmapped")
        node = emb.vertex_map[v]
        if not 0 <= node < emb.host.num_nodes:
            return fail("vertex-map", f"image {node} of {v} out of host range")
        images[node] += 1
    checks.append(InvariantCheck("vertex-map", True))
    measured_load = max(images.values()) if images else 0
    if measured_load > max_load:
        return fail("load", f"load {measured_load} exceeds allowed {max_load}")
    checks.append(
        InvariantCheck("load", True, f"load {measured_load} <= {max_load}")
    )
    for (u, v) in emb.guest.edges():
        path = emb.edge_paths.get((u, v))
        if path is None:
            return fail("edge-paths", f"guest edge ({u}, {v}) has no path")
        if path[0] != emb.vertex_map[u] or path[-1] != emb.vertex_map[v]:
            return fail("edge-paths", f"path for ({u}, {v}) has wrong endpoints")
    checks.append(InvariantCheck("edge-paths", True))
    for (u, v) in emb.guest.edges():
        try:
            _path_edge_ids(emb.host, emb.edge_paths[(u, v)])
        except ValueError as err:
            return fail("hops-are-edges", f"path for ({u}, {v}): {err}")
    checks.append(InvariantCheck("hops-are-edges", True))
    return VerificationReport(
        emb.name or "embedding",
        tuple(checks),
        metrics={
            "load": measured_load,
            "max_load_allowed": max_load,
            "dilation": emb.dilation,
            "congestion": emb.congestion,
            "expansion": emb.expansion,
        },
    )


def reference_verify_multipath(emb: Any, strict: bool = True) -> VerificationReport:
    """The scalar dict/set-based verifier for :class:`MultiPathEmbedding`.

    Kept deliberately free of numpy: edge ids come from
    :meth:`Hypercube.edge_id` one hop at a time, disjointness from per-bundle
    ``Counter`` duplicates, congestion from a global ``Counter`` over each
    bundle's used-edge set.  Report-shape-identical to
    :func:`verify_multipath` — this is what the QA differential referees
    the vectorized kernel against.
    """
    name = emb.name or "multipath-embedding"
    checks: List[InvariantCheck] = []

    def fail(check: str, detail: str) -> VerificationReport:
        checks.append(InvariantCheck(check, False, detail))
        report = VerificationReport(name, tuple(checks))
        return report.raise_if_failed() if strict else report

    images = Counter(emb.vertex_map.values())
    for v in emb.guest.vertices():
        if v not in emb.vertex_map:
            return fail("vertex-map", f"guest vertex {v} is unmapped")
    checks.append(InvariantCheck("vertex-map", True))
    measured_load = max(images.values()) if images else 0
    if measured_load > emb.load_allowed:
        return fail(
            "load", f"load {measured_load} exceeds allowed {emb.load_allowed}"
        )
    checks.append(
        InvariantCheck("load", True, f"load {measured_load} <= {emb.load_allowed}")
    )

    bundles: List[Tuple[Tuple[Any, Any], Tuple[Tuple[int, ...], ...]]] = []
    min_width = None
    for (u, v) in emb.guest.edges():
        bundle = emb.edge_paths.get((u, v))
        if not bundle:
            return fail("edge-paths", f"guest edge ({u}, {v}) has no paths")
        if min_width is None or len(bundle) < min_width:
            min_width = len(bundle)
        hu, hv = emb.vertex_map[u], emb.vertex_map[v]
        for p in bundle:
            if p[0] != hu or p[-1] != hv:
                return fail(
                    "edge-paths", f"path for ({u}, {v}) has wrong endpoints: {p}"
                )
        bundles.append(((u, v), bundle))
    checks.append(InvariantCheck("edge-paths", True))

    base_metrics: Dict[str, Any] = {
        "width": min_width or 0,
        "load": measured_load,
        "max_load_allowed": emb.load_allowed,
        "expansion": emb.expansion,
    }
    total_hops = 0
    for _, bundle in bundles:
        for p in bundle:
            total_hops += len(p) - 1
            for a, b in zip(p, p[1:]):
                if not (
                    0 <= a < emb.host.num_nodes and 0 <= b < emb.host.num_nodes
                ):
                    return fail("hops-are-edges", "path node out of host range")
                x = a ^ b
                if x == 0 or (x & (x - 1)) != 0:
                    return fail(
                        "hops-are-edges", f"({a}, {b}) is not a hypercube edge"
                    )
    if total_hops == 0:
        checks.append(InvariantCheck("hops-are-edges", True))
        checks.append(InvariantCheck("edge-disjoint", True))
        return VerificationReport(
            name,
            tuple(checks),
            {**base_metrics, "dilation": 0, "congestion": 0},
        )
    checks.append(InvariantCheck("hops-are-edges", True))

    duplicate_keys: List[int] = []
    per_host_edge: Counter = Counter()
    dilation = 0
    for idx, (_, bundle) in enumerate(bundles):
        seen: Counter = Counter()
        for p in bundle:
            dilation = max(dilation, len(p) - 1)
            for eid in _path_edge_ids(emb.host, p):
                seen[eid] += 1
        duplicate_keys.extend(
            idx * emb.host.num_edges + eid
            for eid, count in seen.items()
            if count > 1
        )
        per_host_edge.update(seen.keys())
    if duplicate_keys:
        key = min(duplicate_keys)
        return fail(
            "edge-disjoint",
            f"guest edge #{key // emb.host.num_edges} reuses directed "
            f"host edge {key % emb.host.num_edges} across its paths",
        )
    checks.append(InvariantCheck("edge-disjoint", True))
    return VerificationReport(
        name,
        tuple(checks),
        {
            **base_metrics,
            "dilation": dilation,
            "congestion": max(per_host_edge.values()) if per_host_edge else 0,
        },
    )
