"""Embedding data model, metrics, and verification (paper Section 3).

Three embedding styles, matching the paper's definitions:

* :class:`Embedding` — a (possibly many-to-one) vertex map plus one host
  path per guest edge.  Metrics: load, dilation, congestion, expansion.
* :class:`MultiPathEmbedding` — a one-to-one vertex map plus ``w``
  *edge-disjoint* host paths per guest edge (a *width-w* embedding).  The
  congestion of a host edge counts the guest edges one of whose image paths
  uses it.
* :class:`MultiCopyEmbedding` — ``k`` independent one-to-one embeddings of
  the same guest.  The *edge-congestion* sums congestion over all copies.

All verification is against the *directed* hypercube host: a host path is a
sequence of directed host edges, and "edge-disjoint" means no two paths of
the same guest edge share a directed host edge.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.hypercube.graph import Hypercube
from repro.networks.base import GuestGraph

__all__ = ["Embedding", "MultiPathEmbedding", "MultiCopyEmbedding"]

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]
HostPath = Tuple[int, ...]


def _path_edge_ids(host: Hypercube, path: Sequence[int]) -> List[int]:
    """Directed host edge ids along a path (raises on non-edges)."""
    return [host.edge_id(a, b) for a, b in zip(path, path[1:])]


@dataclass
class Embedding:
    """A classical embedding: vertex map + one host path per guest edge."""

    host: Hypercube
    guest: GuestGraph
    vertex_map: Dict[Vertex, int]
    edge_paths: Dict[Edge, HostPath]
    name: str = ""

    # -- metrics (paper Section 3) ------------------------------------------

    @property
    def load(self) -> int:
        """Maximum number of guest vertices per host node."""
        return max(Counter(self.vertex_map.values()).values())

    @property
    def dilation(self) -> int:
        """Maximum path length over all guest edges."""
        return max((len(p) - 1 for p in self.edge_paths.values()), default=0)

    @property
    def congestion(self) -> int:
        """Maximum number of guest edges routed through one directed host edge."""
        counts = self.edge_congestion_counts()
        return max(counts.values()) if counts else 0

    @property
    def expansion(self) -> float:
        """|host| / size of the smallest hypercube holding the guest."""
        min_dim = max(0, math.ceil(math.log2(max(1, self.guest.num_vertices))))
        return self.host.num_nodes / (1 << min_dim)

    def edge_congestion_counts(self) -> Counter:
        """Congestion of every used directed host edge, by edge id."""
        counts: Counter = Counter()
        for path in self.edge_paths.values():
            counts.update(_path_edge_ids(self.host, path))
        return counts

    # -- verification ----------------------------------------------------------

    def verify(self, max_load: Optional[int] = None) -> None:
        """Raise AssertionError unless this is a valid embedding."""
        if max_load is None:
            max_load = math.ceil(self.guest.num_vertices / self.host.num_nodes)
        images = Counter()
        for v in self.guest.vertices():
            if v not in self.vertex_map:
                raise AssertionError(f"guest vertex {v} is unmapped")
            node = self.vertex_map[v]
            if not 0 <= node < self.host.num_nodes:
                raise AssertionError(f"image {node} of {v} out of host range")
            images[node] += 1
        if images and max(images.values()) > max_load:
            raise AssertionError(
                f"load {max(images.values())} exceeds allowed {max_load}"
            )
        for (u, v) in self.guest.edges():
            path = self.edge_paths.get((u, v))
            if path is None:
                raise AssertionError(f"guest edge ({u}, {v}) has no path")
            if path[0] != self.vertex_map[u] or path[-1] != self.vertex_map[v]:
                raise AssertionError(f"path for ({u}, {v}) has wrong endpoints")
            _path_edge_ids(self.host, path)  # validates hops

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<Embedding{tag} {self.guest!r} -> Q_{self.host.n}: "
            f"load={self.load} dilation={self.dilation} congestion={self.congestion}>"
        )


@dataclass
class MultiPathEmbedding:
    """A width-w embedding: w edge-disjoint host paths per guest edge.

    ``step_of`` optionally assigns a *time step* to every hop: the schedule
    claims that hop ``j`` of the path for a guest edge is performed at step
    ``step_of[edge][path_index][j]``.  The paper's cost claims (e.g. cost 3
    in Theorem 1) are verified against this schedule by
    :func:`repro.routing.schedule.verify_step_schedule`.
    """

    host: Hypercube
    guest: GuestGraph
    vertex_map: Dict[Vertex, int]
    edge_paths: Dict[Edge, Tuple[HostPath, ...]]
    name: str = ""
    load_allowed: int = 1
    step_of: Optional[Dict[Edge, Tuple[Tuple[int, ...], ...]]] = field(
        default=None, repr=False
    )

    # -- metrics ---------------------------------------------------------------

    @property
    def width(self) -> int:
        """Minimum number of edge-disjoint paths over all guest edges."""
        return min((len(ps) for ps in self.edge_paths.values()), default=0)

    @property
    def load(self) -> int:
        return max(Counter(self.vertex_map.values()).values())

    @property
    def dilation(self) -> int:
        return max(
            (len(p) - 1 for ps in self.edge_paths.values() for p in ps), default=0
        )

    @property
    def congestion(self) -> int:
        """Max over host edges of the number of guest edges using it."""
        counts = self.edge_congestion_counts()
        return max(counts.values()) if counts else 0

    @property
    def expansion(self) -> float:
        min_dim = max(0, math.ceil(math.log2(max(1, self.guest.num_vertices))))
        return self.host.num_nodes / (1 << min_dim)

    def edge_congestion_counts(self) -> Counter:
        """For each host edge id: number of *guest edges* whose image uses it."""
        counts: Counter = Counter()
        for paths in self.edge_paths.values():
            used = set()
            for p in paths:
                used.update(_path_edge_ids(self.host, p))
            counts.update(used)
        return counts

    # -- verification -------------------------------------------------------------

    def verify(self) -> None:
        """Raise AssertionError unless this is a valid width-w embedding.

        The hop checks are vectorized (numpy) — profiling showed per-hop
        Python calls dominating large constructions; the batched version
        checks the same three invariants: every hop is a hypercube edge,
        endpoints match the vertex images, and no guest edge's path bundle
        reuses a directed host edge (within or across its paths).
        """
        import numpy as np

        images = Counter(self.vertex_map.values())
        for v in self.guest.vertices():
            if v not in self.vertex_map:
                raise AssertionError(f"guest vertex {v} is unmapped")
        if images and max(images.values()) > self.load_allowed:
            raise AssertionError(
                f"load {max(images.values())} exceeds allowed {self.load_allowed}"
            )
        heads: List[int] = []
        tails: List[int] = []
        group: List[int] = []  # guest-edge index per hop
        for idx, (u, v) in enumerate(self.guest.edges()):
            paths = self.edge_paths.get((u, v))
            if not paths:
                raise AssertionError(f"guest edge ({u}, {v}) has no paths")
            hu, hv = self.vertex_map[u], self.vertex_map[v]
            for p in paths:
                if p[0] != hu or p[-1] != hv:
                    raise AssertionError(
                        f"path for ({u}, {v}) has wrong endpoints: {p}"
                    )
                heads.extend(p[:-1])
                tails.extend(p[1:])
                group.extend([idx] * (len(p) - 1))
        if not heads:
            return
        us = np.asarray(heads, dtype=np.int64)
        vs = np.asarray(tails, dtype=np.int64)
        gs = np.asarray(group, dtype=np.int64)
        if us.min() < 0 or max(us.max(), vs.max()) >= self.host.num_nodes:
            raise AssertionError("path node out of host range")
        x = us ^ vs
        if np.any(x == 0) or np.any(x & (x - 1)):
            bad = int(np.nonzero((x == 0) | (x & (x - 1)) != 0)[0][0])
            raise AssertionError(
                f"({heads[bad]}, {tails[bad]}) is not a hypercube edge"
            )
        dims = np.log2(x.astype(np.float64)).astype(np.int64)
        eids = us * self.host.n + dims
        keys = gs * np.int64(self.host.num_edges) + eids
        if np.unique(keys).size != keys.size:
            # locate one offender for the error message
            uniq, counts = np.unique(keys, return_counts=True)
            key = int(uniq[np.argmax(counts > 1)])
            raise AssertionError(
                f"guest edge #{key // self.host.num_edges} reuses directed "
                f"host edge {key % self.host.num_edges} across its paths"
            )

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<MultiPathEmbedding{tag} {self.guest!r} -> Q_{self.host.n}: "
            f"width={self.width} load={self.load} dilation={self.dilation}>"
        )


@dataclass
class MultiCopyEmbedding:
    """k independent embeddings of the same guest graph.

    The paper's definition has one-to-one copies (``copy_load_allowed = 1``);
    derived constructions (e.g. Section 8.1's tree copies riding the
    CBT-to-butterfly substitute) may carry a small constant per-copy load.
    """

    host: Hypercube
    guest: GuestGraph
    copies: List[Embedding]
    name: str = ""
    copy_load_allowed: int = 1

    @property
    def k(self) -> int:
        return len(self.copies)

    @property
    def dilation(self) -> int:
        return max((c.dilation for c in self.copies), default=0)

    @property
    def edge_congestion(self) -> int:
        """Max over host edges of summed congestion across all copies."""
        counts: Counter = Counter()
        for copy in self.copies:
            counts.update(copy.edge_congestion_counts())
        return max(counts.values()) if counts else 0

    @property
    def node_load(self) -> int:
        """Max guest vertices (over all copies) mapped to one host node."""
        counts: Counter = Counter()
        for copy in self.copies:
            counts.update(copy.vertex_map.values())
        return max(counts.values()) if counts else 0

    def verify(self) -> None:
        """Each copy must be a valid embedding within the per-copy load."""
        for i, copy in enumerate(self.copies):
            try:
                copy.verify(max_load=self.copy_load_allowed)
            except AssertionError as err:
                raise AssertionError(f"copy {i}: {err}") from err

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<MultiCopyEmbedding{tag} {self.k} x {self.guest!r} -> "
            f"Q_{self.host.n}: edge_congestion={self.edge_congestion}>"
        )
