"""Embedding data model, metrics, and verification (paper Section 3).

Three embedding styles, matching the paper's definitions:

* :class:`Embedding` — a (possibly many-to-one) vertex map plus one host
  path per guest edge.  Metrics: load, dilation, congestion, expansion.
* :class:`MultiPathEmbedding` — a one-to-one vertex map plus ``w``
  *edge-disjoint* host paths per guest edge (a *width-w* embedding).  The
  congestion of a host edge counts the guest edges one of whose image paths
  uses it.
* :class:`MultiCopyEmbedding` — ``k`` independent one-to-one embeddings of
  the same guest.  The *edge-congestion* sums congestion over all copies.

All verification is against the *directed* hypercube host: a host path is a
sequence of directed host edges, and "edge-disjoint" means no two paths of
the same guest edge share a directed host edge.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.verification import InvariantCheck, VerificationReport
from repro.hypercube.graph import Hypercube
from repro.networks.base import GuestGraph

__all__ = ["Embedding", "MultiPathEmbedding", "MultiCopyEmbedding"]

Vertex = Hashable
Edge = Tuple[Vertex, Vertex]
HostPath = Tuple[int, ...]


def _path_edge_ids(host: Hypercube, path: Sequence[int]) -> List[int]:
    """Directed host edge ids along a path (raises on non-edges)."""
    return [host.edge_id(a, b) for a, b in zip(path, path[1:])]


@dataclass
class Embedding:
    """A classical embedding: vertex map + one host path per guest edge."""

    host: Hypercube
    guest: GuestGraph
    vertex_map: Dict[Vertex, int]
    edge_paths: Dict[Edge, HostPath]
    name: str = ""

    # -- metrics (paper Section 3) ------------------------------------------

    @property
    def load(self) -> int:
        """Maximum number of guest vertices per host node."""
        return max(Counter(self.vertex_map.values()).values())

    @property
    def dilation(self) -> int:
        """Maximum path length over all guest edges."""
        return max((len(p) - 1 for p in self.edge_paths.values()), default=0)

    @property
    def congestion(self) -> int:
        """Maximum number of guest edges routed through one directed host edge."""
        counts = self.edge_congestion_counts()
        return max(counts.values()) if counts else 0

    @property
    def expansion(self) -> float:
        """|host| / size of the smallest hypercube holding the guest."""
        min_dim = max(0, math.ceil(math.log2(max(1, self.guest.num_vertices))))
        return self.host.num_nodes / (1 << min_dim)

    def edge_congestion_counts(self) -> Counter:
        """Congestion of every used directed host edge, by edge id."""
        counts: Counter = Counter()
        for path in self.edge_paths.values():
            counts.update(_path_edge_ids(self.host, path))
        return counts

    # -- verification ----------------------------------------------------------

    def verify(
        self, max_load: Optional[int] = None, strict: bool = True
    ) -> VerificationReport:
        """Verify the embedding; returns a :class:`VerificationReport`.

        Invariants, in dependency order: every guest vertex is mapped into
        the host ("vertex-map"), no host node carries more than ``max_load``
        guest vertices ("load"), every guest edge has a path with the right
        endpoints ("edge-paths"), and every hop is a directed hypercube edge
        ("hops-are-edges").  Verification stops at the first failure.

        With ``strict=True`` (the default, the historical behavior) a failed
        report raises ``AssertionError`` with the failing invariant's
        detail; ``strict=False`` always returns the report.  A passing
        report carries the measured load/dilation/congestion/expansion under
        ``.metrics``.

        The hop checks and congestion counts run on the vectorized kernels
        of :mod:`repro.core.fast_verify`; :meth:`verify_reference` runs the
        scalar dict-walking implementation the QA differential referees the
        kernels against.
        """
        from repro.core.fast_verify import verify_embedding

        return verify_embedding(self, max_load=max_load, strict=strict)

    def verify_reference(
        self, max_load: Optional[int] = None, strict: bool = True
    ) -> VerificationReport:
        """Scalar reference verification (the QA differential referee)."""
        from repro.core.fast_verify import reference_verify_embedding

        return reference_verify_embedding(self, max_load=max_load, strict=strict)

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<Embedding{tag} {self.guest!r} -> Q_{self.host.n}: "
            f"load={self.load} dilation={self.dilation} congestion={self.congestion}>"
        )


@dataclass
class MultiPathEmbedding:
    """A width-w embedding: w edge-disjoint host paths per guest edge.

    ``step_of`` optionally assigns a *time step* to every hop: the schedule
    claims that hop ``j`` of the path for a guest edge is performed at step
    ``step_of[edge][path_index][j]``.  The paper's cost claims (e.g. cost 3
    in Theorem 1) are verified against this schedule by
    :func:`repro.routing.schedule.verify_step_schedule`.
    """

    host: Hypercube
    guest: GuestGraph
    vertex_map: Dict[Vertex, int]
    edge_paths: Dict[Edge, Tuple[HostPath, ...]]
    name: str = ""
    load_allowed: int = 1
    step_of: Optional[Dict[Edge, Tuple[Tuple[int, ...], ...]]] = field(
        default=None, repr=False
    )

    # -- metrics ---------------------------------------------------------------

    @property
    def width(self) -> int:
        """Minimum number of edge-disjoint paths over all guest edges."""
        return min((len(ps) for ps in self.edge_paths.values()), default=0)

    @property
    def load(self) -> int:
        return max(Counter(self.vertex_map.values()).values())

    @property
    def dilation(self) -> int:
        return max(
            (len(p) - 1 for ps in self.edge_paths.values() for p in ps), default=0
        )

    @property
    def congestion(self) -> int:
        """Max over host edges of the number of guest edges using it."""
        counts = self.edge_congestion_counts()
        return max(counts.values()) if counts else 0

    @property
    def expansion(self) -> float:
        min_dim = max(0, math.ceil(math.log2(max(1, self.guest.num_vertices))))
        return self.host.num_nodes / (1 << min_dim)

    def edge_congestion_counts(self) -> Counter:
        """For each host edge id: number of *guest edges* whose image uses it."""
        counts: Counter = Counter()
        for paths in self.edge_paths.values():
            used = set()
            for p in paths:
                used.update(_path_edge_ids(self.host, p))
            counts.update(used)
        return counts

    # -- verification -------------------------------------------------------------

    def verify(self, strict: bool = True) -> VerificationReport:
        """Verify the width-w embedding; returns a :class:`VerificationReport`.

        The path-shaped work is fully vectorized (numpy) — profiling showed
        per-hop Python calls dominating large constructions; the batched
        kernels in :mod:`repro.core.fast_verify` check the same invariants
        the scalar code did: every guest vertex is mapped within the allowed
        load ("vertex-map", "load"), every guest edge has paths with the
        right endpoints ("edge-paths"), every hop is a hypercube edge
        ("hops-are-edges"), and no guest edge's path bundle reuses a
        directed host edge within or across its paths ("edge-disjoint").
        The passing report's ``.metrics`` (width, dilation, congestion, ...)
        reuse the verification arrays — the congestion count comes from the
        same edge-id vector the disjointness check sorted, not a second
        traversal.  :meth:`verify_reference` runs the scalar dict-based
        implementation the QA differential referees the kernels against.

        ``strict=True`` (default) raises ``AssertionError`` at the first
        failed invariant, preserving the historical contract.
        """
        from repro.core.fast_verify import verify_multipath

        return verify_multipath(self, strict=strict)

    def verify_reference(self, strict: bool = True) -> VerificationReport:
        """Scalar reference verification (the QA differential referee)."""
        from repro.core.fast_verify import reference_verify_multipath

        return reference_verify_multipath(self, strict=strict)

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<MultiPathEmbedding{tag} {self.guest!r} -> Q_{self.host.n}: "
            f"width={self.width} load={self.load} dilation={self.dilation}>"
        )


@dataclass
class MultiCopyEmbedding:
    """k independent embeddings of the same guest graph.

    The paper's definition has one-to-one copies (``copy_load_allowed = 1``);
    derived constructions (e.g. Section 8.1's tree copies riding the
    CBT-to-butterfly substitute) may carry a small constant per-copy load.
    """

    host: Hypercube
    guest: GuestGraph
    copies: List[Embedding]
    name: str = ""
    copy_load_allowed: int = 1

    @property
    def k(self) -> int:
        return len(self.copies)

    @property
    def dilation(self) -> int:
        return max((c.dilation for c in self.copies), default=0)

    @property
    def edge_congestion(self) -> int:
        """Max over host edges of summed congestion across all copies."""
        counts: Counter = Counter()
        for copy in self.copies:
            counts.update(copy.edge_congestion_counts())
        return max(counts.values()) if counts else 0

    @property
    def node_load(self) -> int:
        """Max guest vertices (over all copies) mapped to one host node."""
        counts: Counter = Counter()
        for copy in self.copies:
            counts.update(copy.vertex_map.values())
        return max(counts.values()) if counts else 0

    def verify(self, strict: bool = True) -> VerificationReport:
        """Verify every copy; returns a :class:`VerificationReport`.

        Each copy must be a valid embedding within the per-copy load; its
        invariants appear in the report prefixed ``copy{i}:``.  Verification
        stops at the first failing copy.  ``strict=True`` (default) raises
        ``AssertionError`` with the historical ``copy {i}: ...`` message.
        """
        return self._verify_copies(strict, reference=False)

    def verify_reference(self, strict: bool = True) -> VerificationReport:
        """Scalar reference verification of every copy (the QA referee)."""
        return self._verify_copies(strict, reference=True)

    def _verify_copies(self, strict: bool, reference: bool) -> VerificationReport:
        checks: List[InvariantCheck] = []
        for i, copy in enumerate(self.copies):
            verify = copy.verify_reference if reference else copy.verify
            sub = verify(max_load=self.copy_load_allowed, strict=False)
            checks.extend(
                InvariantCheck(
                    f"copy{i}:{c.name}",
                    c.passed,
                    f"copy {i}: {c.detail}" if not c.passed else c.detail,
                )
                for c in sub.checks
            )
            if not sub.ok:
                report = VerificationReport(
                    self.name or "multicopy-embedding", tuple(checks)
                )
                return report.raise_if_failed() if strict else report
        return VerificationReport(
            self.name or "multicopy-embedding",
            tuple(checks),
            metrics={
                "k": self.k,
                "dilation": self.dilation,
                "edge_congestion": self.edge_congestion,
                "node_load": self.node_load,
                "copy_load_allowed": self.copy_load_allowed,
            },
        )

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<MultiCopyEmbedding{tag} {self.k} x {self.guest!r} -> "
            f"Q_{self.host.n}: edge_congestion={self.edge_congestion}>"
        )
