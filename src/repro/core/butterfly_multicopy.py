"""Multiple-copy embeddings of butterflies (corollary to Theorem 3, §5.4).

"It is easy to show that FFTs and Butterflies can be embedded in CCCs with
dilation 2 and congestion 2.  Thus they also have efficient multiple-copy
embeddings into the hypercube."  This module composes the butterfly->CCC
embedding with Theorem 3's n CCC copies:

* a forward straight butterfly edge rides the CCC straight edge;
* a forward cross edge ``(l, c) -> (l+1, c ^ 2^l)`` rides the CCC cross edge
  at level ``l`` followed by the straight edge up;
* reverse edges (for the undirected butterfly Theorem 5 needs) ride the
  reversed straight edges of the undirected CCC (Section 5.4's extension,
  which adds at most 2 to the congestion).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.ccc_multicopy import ccc_multicopy_embedding
from repro.core.embedding import Embedding, MultiCopyEmbedding
from repro.networks.butterfly import Butterfly

__all__ = ["butterfly_multicopy_embedding"]


def butterfly_multicopy_embedding(
    m: int, undirected: bool = False
) -> MultiCopyEmbedding:
    """Embed ``m`` copies of the m-level butterfly in ``Q_{m + log m}``.

    Requires ``m`` a power of two (inherited from Theorem 3).  With
    ``undirected=True`` each copy carries both orientations of every
    butterfly edge; reverse straight CCC edges are then also used, raising
    the per-copy congestion (the paper's Section 5.4 bound: at most doubled).
    """
    ccc_mc = ccc_multicopy_embedding(m)
    guest = Butterfly(m, undirected=undirected)
    copies = [
        _compose_butterfly_on_ccc(guest, copy) for copy in ccc_mc.copies
    ]
    kind = "undirected-" if undirected else ""
    return MultiCopyEmbedding(
        ccc_mc.host, guest, copies, name=f"{kind}butterfly-multicopy-{m}"
    )


def _compose_butterfly_on_ccc(guest: Butterfly, ccc_copy: Embedding) -> Embedding:
    """One butterfly copy: identity on vertices, CCC routes for edges."""
    m = guest.n
    vmap = ccc_copy.vertex_map  # CCC vertex (level, column) -> host node
    vertex_map = {v: vmap[v] for v in guest.vertices()}
    edge_paths: Dict[Tuple, Tuple[int, ...]] = {}

    def host_path(ccc_route: List[Tuple[int, int]]) -> Tuple[int, ...]:
        return tuple(vmap[x] for x in ccc_route)

    for level in range(m):
        nxt = (level + 1) % m
        bit = 1 << level
        for c in range(guest.num_columns):
            u, v = (level, c), (nxt, c)
            edge_paths[(u, v)] = host_path([u, v])  # straight = CCC straight
            w = (nxt, c ^ bit)
            # cross: CCC cross at `level`, then straight up
            edge_paths[(u, w)] = host_path([u, (level, c ^ bit), w])
            if guest.undirected:
                # reverse straight = reversed CCC straight edge
                edge_paths[(v, u)] = host_path([v, u])
                # reverse cross: straight down (reversed), then CCC cross
                edge_paths[(w, u)] = host_path([w, (level, c ^ bit), u])
    emb = Embedding(
        ccc_copy.host,
        guest,
        vertex_map,
        edge_paths,
        name=f"butterfly-on-{ccc_copy.name}",
    )
    return emb
