"""Theorem 5 and Section 6.2: multiple-path embeddings of trees.

**Theorem 5**: the ``(2**{2n} - 1)``-vertex complete binary tree embeds in
``Q_{2n}`` (``n = m + log m``) with width ``n`` and O(1) n-packet cost and
load.  The pipeline, following the paper:

1. ``m`` copies of the (undirected) m-level butterfly in ``Q_n``
   (Theorem 3 + the butterfly-on-CCC composition);
2. the induced cross product ``X(butterfly)`` in ``Q_{2n}`` with width ``n``
   (Theorem 4);
3. the 2n-level CBT into ``X``: the top ``n`` levels into the row-0
   butterfly; each level-(n-1) leaf roots an n-level subtree in its own
   column's butterfly; each column-tree leaf takes its two children from its
   row butterfly's out-neighbors;
4. every CBT edge inherits the width-n host paths of the X edges it rides
   (concatenating the k-th path of each X edge keeps the n composites
   edge-disjoint).

**Substitution note** (see DESIGN.md): the paper invokes BCHLR'88 [4] for a
load/congestion/dilation-O(1) CBT-to-butterfly embedding.  We use our own
constructive embedding: the CBT's ``m`` depth-m subtrees ride the
butterfly's natural fan-out trees rooted at ``m`` distinct levels (columns
chosen greedily to minimize overlap), and the ``m - 1`` top nodes co-locate
with their leftmost subtree root.  All constants are measured and recorded;
subtree edges have dilation 1, top edges dilation up to O(m) (the same
"confined high-dilation" concession the paper itself makes for butterflies
in Section 8.1).

**Section 6.2**: arbitrary bounded-degree trees ride a centroid-split
tree-to-CBT map (substituting for [6]) composed with Theorem 5, for width n
and measured O(log)-factor cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.butterfly_multicopy import butterfly_multicopy_embedding
from repro.core.cross_product import induced_cross_product_embedding
from repro.core.embedding import MultiPathEmbedding
from repro.networks.butterfly import Butterfly
from repro.networks.tree import ArbitraryTree, CompleteBinaryTree

__all__ = [
    "cbt_to_butterfly_map",
    "theorem5_embedding",
    "tree_to_cbt_map",
    "arbitrary_tree_embedding",
]

BFVertex = Tuple[int, int]


# ---------------------------------------------------------------------------
# CBT -> butterfly (substitute for BCHLR'88 [4])
# ---------------------------------------------------------------------------


def cbt_to_butterfly_map(
    m: int,
) -> Tuple[Dict[int, BFVertex], Dict[Tuple[int, int], List[BFVertex]]]:
    """Map the ``(m + log m)``-level CBT onto the m-level butterfly.

    Returns ``(vertex_map, edge_routes)`` where ``edge_routes`` maps each
    *downward* tree edge ``(parent, child)`` to a butterfly vertex route
    (length 0 when parent and child co-locate).  Guarantees:

    * subtree edges are single butterfly edges (dilation 1);
    * the ``2**{n-1}`` tree leaves land on distinct butterfly vertices
      (required by Theorem 5's column assignment);
    * measured load is small (subtree overlaps are minimized greedily).
    """
    if m < 2 or m & (m - 1):
        raise ValueError(f"need m a power of two, got {m}")
    log_m = m.bit_length() - 1
    n = m + log_m
    bf = Butterfly(m, undirected=True)

    load: Dict[BFVertex, int] = {}
    vertex_map: Dict[int, BFVertex] = {}

    def subtree_position(i: int, c_i: int, depth: int, s: int) -> BFVertex:
        """Position of the depth-``depth`` node with branch bits ``s`` of the
        fan-out tree rooted at level ``i``, base column ``c_i``."""
        col = c_i
        for t in range(depth):
            bit = 1 << ((i + t) % m)
            # heap ids append the newest branch as the lowest bit, so the
            # depth-t decision (t = 0 taken first) is bit (depth - 1 - t)
            if (s >> (depth - 1 - t)) & 1:
                col |= bit
            else:
                col &= ~bit
        return ((i + depth) % m, col)

    # choose each subtree's base column greedily to minimize max load
    bases: List[int] = []
    for i in range(m):
        best_col, best_key = 0, None
        for cand in range(bf.num_columns):
            worst = 0
            total = 0
            for depth in range(m):
                for s in range(1 << depth):
                    pos = subtree_position(i, cand, depth, s)
                    here = load.get(pos, 0) + 1
                    worst = max(worst, here)
                    total += here
            key = (worst, total, cand)
            if best_key is None or key < best_key:
                best_key, best_col = key, cand
        bases.append(best_col)
        for depth in range(m):
            for s in range(1 << depth):
                pos = subtree_position(i, best_col, depth, s)
                load[pos] = load.get(pos, 0) + 1

    # subtree i of the CBT: root heap id m + i; node at depth d has heap id
    # (m + i) * 2^d + s
    for i in range(m):
        for depth in range(m):
            for s in range(1 << depth):
                heap_id = ((m + i) << depth) | s
                vertex_map[heap_id] = subtree_position(i, bases[i], depth, s)

    # top nodes co-locate with their leftmost descendant subtree root
    for v in range(m - 1, 0, -1):
        left = 2 * v
        vertex_map[v] = vertex_map[left]

    # edge routes
    adjacency = _butterfly_undirected_adjacency(bf)
    edge_routes: Dict[Tuple[int, int], List[BFVertex]] = {}
    for parent in range(1, 1 << (n - 1)):
        for child in (2 * parent, 2 * parent + 1):
            pu, pv = vertex_map[parent], vertex_map[child]
            if parent >= m:  # subtree edge: single butterfly edge
                edge_routes[(parent, child)] = [pu, pv]
            elif pu == pv:  # leftmost top edge: co-located
                edge_routes[(parent, child)] = [pu]
            else:
                edge_routes[(parent, child)] = _bfs_route(adjacency, pu, pv)
    return vertex_map, edge_routes


def _butterfly_undirected_adjacency(bf: Butterfly) -> Dict[BFVertex, List[BFVertex]]:
    adj: Dict[BFVertex, List[BFVertex]] = {v: [] for v in bf.vertices()}
    for u, v in bf.edges():
        adj[u].append(v)
    return adj


def _bfs_route(
    adj: Dict[BFVertex, List[BFVertex]], src: BFVertex, dst: BFVertex
) -> List[BFVertex]:
    from collections import deque

    prev: Dict[BFVertex, BFVertex] = {src: src}
    queue = deque([src])
    while queue:
        x = queue.popleft()
        if x == dst:
            break
        for y in adj[x]:
            if y not in prev:
                prev[y] = x
                queue.append(y)
    route = [dst]
    while route[-1] != src:
        route.append(prev[route[-1]])
    route.reverse()
    return route


# ---------------------------------------------------------------------------
# Theorem 5
# ---------------------------------------------------------------------------


def theorem5_embedding(m: int) -> MultiPathEmbedding:
    """Theorem 5: the ``(2**{2n}-1)``-node CBT in ``Q_{2n}``, width ``n``.

    ``m`` must be a power of two; ``n = m + log m``.  Practical sizes:
    ``m = 2`` (CBT with 63 nodes in Q_6) and ``m = 4`` (4095 nodes in Q_12).
    """
    mc = butterfly_multicopy_embedding(m, undirected=True)
    x = induced_cross_product_embedding(mc)
    n = x.info["n"]
    host = x.host
    copies = mc.copies
    from repro.hypercube.moments import moment

    num_copies = len(copies)

    def phi(index: int) -> Dict[BFVertex, int]:
        return copies[moment(index) % num_copies].vertex_map

    def phi_inv(index: int) -> Dict[int, BFVertex]:
        return {h: v for v, h in phi(index).items()}

    bf_vmap, bf_routes = cbt_to_butterfly_map(m)
    big = CompleteBinaryTree(2 * n)
    vertex_map: Dict[int, int] = {}
    # edge -> route as list of X vertices (host node ids)
    routes: Dict[Tuple[int, int], List[int]] = {}

    # 1. top n levels into row 0
    phi0 = phi(0)
    for v in range(1, 1 << n):
        vertex_map[v] = (0 << n) | phi0[bf_vmap[v]]
    for (parent, child), route in bf_routes.items():
        routes[(parent, child)] = [(0 << n) | phi0[b] for b in route]

    # 2. column subtrees rooted at the row-tree leaves
    leaf_start = 1 << (n - 1)
    for u in range(leaf_start, 1 << n):
        j = vertex_map[u] & ((1 << n) - 1)  # u's column
        phij = phi(j)
        phij_inv = phi_inv(j)
        # X vertex (i, j) hosts column-butterfly vertex phi_j^{-1}(i); u sits
        # at row i_u (always 0, since the whole row tree lives in row 0)
        i_u = vertex_map[u] >> n
        root_bf = phij_inv[i_u]
        auto = _butterfly_automorphism(m, bf_vmap[1], root_bf)
        for depth in range(1, n):
            for s in range(1 << depth):
                big_id = (u << depth) | s
                if big_id >= 1 << (2 * n):
                    continue
                bf_pos = auto(bf_vmap[(1 << depth) | s])
                vertex_map[big_id] = (phij[bf_pos] << n) | j
        for (parent, child), route in bf_routes.items():
            # reuse the CBT_n routes inside this column via the automorphism
            big_parent = _relocate_id(u, parent, n)
            big_child = _relocate_id(u, child, n)
            routes[(big_parent, big_child)] = [
                (phij[auto(b)] << n) | j for b in route
            ]

    # 3. last level: children from the row butterflies
    for w in range(1 << (2 * n - 2), 1 << (2 * n - 1)):
        hw = vertex_map[w]
        i_w, j_w = hw >> n, hw & ((1 << n) - 1)
        phir = phi(i_w)
        phir_inv = phi_inv(i_w)
        bw = phir_inv[j_w]
        straight, cross = Butterfly(m).out_neighbors(bw)
        for child, nb in ((2 * w, straight), (2 * w + 1, cross)):
            vertex_map[child] = (i_w << n) | phir[nb]
            routes[(w, child)] = [hw, vertex_map[child]]

    # 4. compose every (bidirectional) CBT edge through the X paths
    edge_paths: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {}
    for (parent, child), route in routes.items():
        edge_paths[(parent, child)] = _compose_x_paths(x, route, n)
        edge_paths[(child, parent)] = _compose_x_paths(x, route[::-1], n)

    from collections import Counter

    load = max(Counter(vertex_map.values()).values())
    emb = MultiPathEmbedding(
        host,
        big,
        vertex_map,
        edge_paths,
        name=f"theorem5-cbt-Q{2 * n}",
        load_allowed=load,
    )
    emb.info = {
        "m": m,
        "n": n,
        "width": n,
        "load": load,
        "claim": {"width": n, "load": "O(1)", "cost": "O(1)"},
    }
    return emb


def _relocate_id(new_root: int, rel_id: int, n: int) -> int:
    """Heap id of the node at relative position ``rel_id`` under ``new_root``."""
    depth = rel_id.bit_length() - 1
    offset = rel_id - (1 << depth)
    return (new_root << depth) | offset


def _butterfly_automorphism(m: int, src: BFVertex, dst: BFVertex):
    """A butterfly automorphism (level rotation + column XOR) with
    ``auto(src) == dst``."""
    t = (dst[0] - src[0]) % m
    mask = (1 << m) - 1

    def rot(c: int) -> int:
        return ((c << t) | (c >> (m - t))) & mask if t else c

    d = dst[1] ^ rot(src[1])

    def auto(v: BFVertex) -> BFVertex:
        return ((v[0] + t) % m, rot(v[1]) ^ d)

    return auto


from repro.routing.pathutils import erase_loops as _erase_loops


def _compose_x_paths(
    x: MultiPathEmbedding, route: Sequence[int], n: int
) -> Tuple[Tuple[int, ...], ...]:
    """Concatenate the k-th host paths of each X edge along ``route``.

    The k-th composites are pairwise edge-disjoint (each X edge's path sets
    are); loop-erasure then shortens each walk into a simple path without
    breaking that disjointness.  A length-0 route (co-located endpoints)
    yields a single trivial path.
    """
    if len(route) == 1:
        return ((route[0],),)
    composites: List[List[int]] = [[route[0]] for _ in range(n)]
    for a, b in zip(route, route[1:]):
        paths = x.edge_paths[(a, b)]
        for k in range(n):
            composites[k].extend(paths[k][1:])
    return tuple(_erase_loops(p) for p in composites)


# ---------------------------------------------------------------------------
# Section 6.2: arbitrary trees
# ---------------------------------------------------------------------------


def tree_to_cbt_map(tree: ArbitraryTree, levels: int) -> Dict[int, int]:
    """Map an arbitrary tree into the ``levels``-level CBT (heap ids).

    Centroid splitting (substitute for [6]): the centroid goes to the CBT
    subtree root and the remaining components are packed into the two child
    subtrees.  Dilation and load are O(log) in the worst case — measured by
    the caller and recorded in EXPERIMENTS.md.
    """
    if tree.num_vertices > (1 << levels) - 1:
        raise ValueError("tree too large for the target CBT")
    adj: Dict[int, List[int]] = {v: [] for v in tree.vertices()}
    for child, par in tree.parent.items():
        adj[par].append(child)
        adj[child].append(par)
    mapping: Dict[int, int] = {}

    def subtree_nodes(root: int, banned: set, universe: set) -> List[int]:
        out, stack = [], [root]
        seen = set(banned)
        seen.add(root)
        while stack:
            v = stack.pop()
            out.append(v)
            for w in adj[v]:
                if w in universe and w not in seen:
                    seen.add(w)
                    stack.append(w)
        return out

    def centroid(nodes: List[int]) -> int:
        node_set = set(nodes)
        sizes: Dict[int, int] = {}
        order: List[int] = []
        seen = {nodes[0]}
        stack = [nodes[0]]
        parent: Dict[int, Optional[int]] = {nodes[0]: None}
        while stack:
            v = stack.pop()
            order.append(v)
            for w in adj[v]:
                if w in node_set and w not in seen:
                    seen.add(w)
                    parent[w] = v
                    stack.append(w)
        for v in reversed(order):
            sizes[v] = 1 + sum(
                sizes[w] for w in adj[v] if parent.get(w) == v and w in sizes
            )
        total = len(nodes)
        best, best_worst = nodes[0], total
        for v in order:
            worst = total - sizes[v]
            for w in adj[v]:
                if w in node_set and parent.get(w) == v:
                    worst = max(worst, sizes[w])
            if worst < best_worst:
                best, best_worst = v, worst
        return best

    def place(forests: List[List[int]], cbt_node: int, lvl: int) -> None:
        total = sum(len(f) for f in forests)
        if total == 0:
            return
        if lvl == 1:
            for f in forests:
                for v in f:
                    mapping[v] = cbt_node  # load accumulates at the frontier
            return
        # consume this CBT node with the centroid of the largest component,
        # then split everything left between the two child subtrees
        forests = sorted(forests, key=len, reverse=True)
        nodes = forests[0]
        c = centroid(nodes)
        mapping[c] = cbt_node
        node_set = set(nodes)
        comps = [subtree_nodes(w, {c}, node_set) for w in adj[c] if w in node_set]
        comps.extend(forests[1:])
        bins: List[List[List[int]]] = [[], []]
        sizes = [0, 0]
        for comp in sorted(comps, key=len, reverse=True):
            idx = 0 if sizes[0] <= sizes[1] else 1
            bins[idx].append(comp)
            sizes[idx] += len(comp)
        place(bins[0], 2 * cbt_node, lvl - 1)
        place(bins[1], 2 * cbt_node + 1, lvl - 1)

    place([list(tree.vertices())], 1, levels)
    return mapping


def arbitrary_tree_embedding(tree: ArbitraryTree, m: int) -> MultiPathEmbedding:
    """Section 6.2: width-n embedding of an arbitrary bounded-degree tree.

    Composes :func:`tree_to_cbt_map` with :func:`theorem5_embedding`.
    Tree edges ride the CBT path between their images, inheriting the
    width-n host paths of every CBT edge on the way.
    """
    cbt_emb = theorem5_embedding(m)
    n = cbt_emb.info["n"]
    levels = 2 * n
    mapping = tree_to_cbt_map(tree, levels)

    def cbt_path(a: int, b: int) -> List[int]:
        # walk both heap ids up to their lowest common ancestor
        pa, pb = [a], [b]
        x, y = a, b
        while x != y:
            if x > y:
                x >>= 1
                pa.append(x)
            else:
                y >>= 1
                pb.append(y)
        return pa + pb[::-1][1:]

    vertex_map = {v: cbt_emb.vertex_map[mapping[v]] for v in tree.vertices()}
    edge_paths: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {}
    dilation_cbt = 0
    for (u, v) in tree.edges():
        hops = cbt_path(mapping[u], mapping[v])
        dilation_cbt = max(dilation_cbt, len(hops) - 1)
        if len(hops) == 1:
            edge_paths[(u, v)] = ((vertex_map[u],),)
            continue
        # Build the composites one at a time.  Aligning path index k across
        # all CBT edges is not enough here: the k1-th path of one CBT edge
        # can overlap the k2-th path of another, so each composite greedily
        # picks, per CBT edge, an unused path avoiding every host edge
        # claimed by the previously built composites.
        segments = [
            cbt_emb.edge_paths[(a, b)]
            for a, b in zip(hops, hops[1:])
            if len(cbt_emb.edge_paths[(a, b)]) > 1  # skip co-located hops
        ]
        host = cbt_emb.host
        claimed: set = set()
        used: List[set] = [set() for _ in segments]
        survivors: List[Tuple[int, ...]] = []
        for _ in range(n):
            walk: List[int] = [vertex_map[u]]
            choice: List[int] = []
            ok = True
            for si, seg in enumerate(segments):
                picked = None
                for pi, p in enumerate(seg):
                    if pi in used[si]:
                        continue
                    ids = {
                        host.edge_id(a, b) for a, b in zip(p, p[1:])
                    }
                    if ids & claimed:
                        continue
                    picked = pi
                    break
                if picked is None:
                    ok = False
                    break
                choice.append(picked)
                walk.extend(seg[picked][1:])
            if not ok:
                continue
            path = _erase_loops(walk)
            ids = {host.edge_id(a, b) for a, b in zip(path, path[1:])}
            claimed |= ids
            for si, pi in zip(range(len(segments)), choice):
                used[si].add(pi)
            if len(path) > 1:
                survivors.append(path)
        edge_paths[(u, v)] = tuple(survivors) or ((vertex_map[u],),)

    from collections import Counter

    load = max(Counter(vertex_map.values()).values())
    emb = MultiPathEmbedding(
        cbt_emb.host,
        tree,
        vertex_map,
        edge_paths,
        name=f"sec6.2-tree-Q{2 * n}",
        load_allowed=load,
    )
    emb.info = {
        "m": m,
        "n": n,
        "cbt_dilation": dilation_cbt,
        "claim": {"width": n, "cost": "O(log n)"},
    }
    return emb
