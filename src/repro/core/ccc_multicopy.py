"""Theorem 3: n copies of the CCC in ``Q_{n + log n}`` with edge-congestion 2.

Also Lemma 4 (Greenberg–Heath–Rosenberg): a single CCC copy with dilation 1
(n even) or 2 (n odd).

Construction (Section 5).  Let ``r = log2 n``.  An embedding is specified by

* a length-r ordered *window* ``W`` of hypercube dimensions and the disjoint
  length-n window ``Wbar``;
* a Hamiltonian cycle ``H`` of ``Q_r``.

CCC vertex ``(level, column)`` maps to the host node whose signature on
``W`` is ``H(level)`` and whose signature on ``Wbar`` is ``column``.  Then
level-``l`` straight edges map to single host edges in the dimension of
``W`` at the gray-transition position, and level-``l`` cross edges map to
dimension ``Wbar(l)``.

For the n-copy embedding the windows overlap in the carefully nested pattern
``W^k(0) = 1``, ``W^k(i) = 2^i + prefix_i(k)`` and the cycles are the
translated gray cycles ``H^k = H_r XOR b(k)`` — Lemmas 5–8 of the paper show
the resulting congestion is at most 1 from cross edges and 2 from straight
edges (2 only in dimension 1, where cross congestion is 0), i.e. 2 overall.

Bit conventions: columns are indexed LSB-first (bit ``l`` of the column sits
at host dimension ``Wbar(l)``); signatures on ``W`` are MSB-first, matching
the paper's prefix arguments (window position ``i`` holds bit ``r-1-i`` of
``H(level)``).

As in the paper, the n-copy embedding requires ``n`` to be a power of two.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.embedding import Embedding, MultiCopyEmbedding
from repro.hypercube.graph import Hypercube
from repro.hypercube.graycode import gray_node_sequence
from repro.networks.ccc import CubeConnectedCycles

__all__ = [
    "ccc_single_embedding",
    "ccc_multicopy_embedding",
    "ccc_multicopy_naive",
    "theorem3_claim",
    "level_cycle",
]


def theorem3_claim(n: int) -> Dict[str, int]:
    """Paper claim: n copies, edge-congestion 2, dilation 1 (n even) / 2 (odd)."""
    return {"copies": n, "edge_congestion": 2, "dilation": 1 if n % 2 == 0 else 2}


def level_cycle(n: int, r: int) -> List[int]:
    """A cyclic sequence of ``n`` distinct nodes of ``Q_r`` for the CCC levels.

    Consecutive nodes (including the wrap) are at Hamming distance 1 when
    ``n`` is even; for odd ``n`` (no odd cycles in the bipartite hypercube)
    the wrap pair is at distance 2, which is where Lemma 4's dilation 2
    comes from.
    """
    if n > (1 << r):
        raise ValueError(f"cannot place {n} levels in Q_{r}")
    if n == (1 << r):
        return gray_node_sequence(r)
    if n % 2 == 0:
        # ride up the first n/2 gray codes of Q_{r-1} and back with the top
        # bit set: all steps (and the wrap) are single-bit
        half = n // 2
        path = gray_node_sequence(r - 1)[:half]
        top = 1 << (r - 1)
        return path + [x | top for x in reversed(path)]
    # odd: first n nodes of the gray cycle; wrap distance is 2
    return gray_node_sequence(r)[:n]


def _window_embedding(
    n: int,
    r: int,
    host: Hypercube,
    window: List[int],
    cycle: List[int],
    name: str,
    wbar: Optional[List[int]] = None,
    undirected: bool = False,
) -> Embedding:
    """Build one CCC embedding from a window and a level cycle (Section 5.2).

    ``wbar`` defaults to the paper's rule (``Wbar(l) = l`` unless ``l`` is in
    the window, in which case the spare top dimension of its tier); ablation
    variants pass an explicit complement ordering instead.
    """
    wset = set(window)
    if len(window) != r or len(wset) != r:
        raise ValueError("window must contain r distinct dimensions")
    if wbar is None:
        wbar = [
            (lev if lev not in wset else n + (lev.bit_length() - 1))
            for lev in range(n)
        ]
    if set(wbar) & wset or len(set(wbar)) != n:
        raise AssertionError("windows are not disjoint")

    ccc = CubeConnectedCycles(n, undirected=undirected)

    # host node bits contributed by the level signature, per level
    level_bits = []
    for lev in range(n):
        sig = cycle[lev]
        v = 0
        for i in range(r):
            if (sig >> (r - 1 - i)) & 1:
                v |= 1 << window[i]
        level_bits.append(v)

    def vmap(level: int, column: int) -> int:
        v = level_bits[level]
        for j in range(n):
            if (column >> j) & 1:
                v |= 1 << wbar[j]
        return v

    vertex_map = {
        (lev, c): vmap(lev, c) for lev in range(n) for c in range(1 << n)
    }
    edge_paths: Dict[Tuple, Tuple[int, ...]] = {}
    for (u, v) in ccc.straight_edges():
        hu, hv = vertex_map[u], vertex_map[v]
        diff = hu ^ hv
        if diff.bit_count() == 1:
            edge_paths[(u, v)] = (hu, hv)
        elif diff.bit_count() == 2:
            # odd-n wrap: route through either intermediate (pick the lower dim
            # first, deterministically)
            d = diff & -diff
            edge_paths[(u, v)] = (hu, hu ^ d, hv)
        else:
            raise AssertionError(
                f"straight edge {u}->{v} spans {diff.bit_count()} dimensions"
            )
    for (u, v) in ccc.cross_edges():
        edge_paths[(u, v)] = (vertex_map[u], vertex_map[v])
    return Embedding(host, ccc, vertex_map, edge_paths, name=name)


def ccc_single_embedding(n: int) -> Embedding:
    """Lemma 4: embed the n-level CCC in ``Q_{n + ceil(log n)}``.

    Dilation 1 for even ``n``, 2 for odd ``n`` (odd column cycles cannot map
    onto the bipartite hypercube with dilation 1).
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    r = max(1, (n - 1).bit_length())
    host = Hypercube(n + r)
    window = list(range(n, n + r))  # disjoint from level dims by construction
    # with this window, Wbar(l) = l for every level, keeping cross edges in
    # the low n dimensions
    return _window_embedding(
        n, r, host, window, level_cycle(n, r), name=f"lemma4-ccc-{n}"
    )


def ccc_multicopy_embedding(n: int, undirected: bool = False) -> MultiCopyEmbedding:
    """Theorem 3: ``n`` copies of the n-level CCC in ``Q_{n + log n}``.

    Requires ``n`` to be a power of two (as assumed in the paper's Section 5).
    The k-th copy uses window ``W^k(0) = 1``, ``W^k(i) = 2^i + prefix_i(k)``
    and level cycle ``H^k = H_r XOR b(k)``.

    With ``undirected=True`` each copy also carries the downward straight
    edges — Section 5.4's extension: "these edges will contribute an
    additional congestion of at most two increasing the total congestion to
    four" (measured by bench E7 / the tests).
    """
    if n < 2 or n & (n - 1):
        raise ValueError(f"multicopy construction needs n a power of two, got {n}")
    r = n.bit_length() - 1
    host = Hypercube(n + r)
    copies = []
    for k in range(n):
        window = [1] + [(1 << i) + (k >> (r - i)) for i in range(1, r)]
        cycle = [h ^ k for h in gray_node_sequence(r)]
        copies.append(
            _window_embedding(
                n, r, host, window, cycle, name=f"theorem3-copy{k}",
                undirected=undirected,
            )
        )
    kind = "undirected-" if undirected else ""
    mc = MultiCopyEmbedding(
        host, copies[0].guest, copies, name=f"{kind}theorem3-ccc-{n}"
    )
    return mc


def ccc_multicopy_naive(n: int, scheme: str) -> MultiCopyEmbedding:
    """Ablation: the two "naive extremes" of Section 5.3.

    * ``scheme="identical"`` — every copy uses the same window (straight
      edges pile onto the same ``r`` dimensions: congestion >= n/r);
    * ``scheme="disjoint"`` — each copy gets its own disjoint window (only
      ``floor((n + r) / r)`` copies fit; the paper shows cross-edge
      congestion still reaches the number of copies).

    Both verify as valid multicopy embeddings — the point is their measured
    congestion versus Theorem 3's overlapping windows (congestion 2).
    """
    if n < 2 or n & (n - 1):
        raise ValueError(f"need n a power of two, got {n}")
    r = n.bit_length() - 1
    host = Hypercube(n + r)
    copies = []
    if scheme == "identical":
        window = list(range(n, n + r))
        for k in range(n):
            cycle = [h ^ k for h in gray_node_sequence(r)]
            copies.append(
                _window_embedding(
                    n, r, host, window, cycle, name=f"naive-identical-{k}"
                )
            )
    elif scheme == "disjoint":
        num = (n + r) // r
        for k in range(num):
            window = list(range(k * r, (k + 1) * r))
            complement = [d for d in range(n + r) if d not in set(window)]
            copies.append(
                _window_embedding(
                    n, r, host, window, gray_node_sequence(r),
                    name=f"naive-disjoint-{k}", wbar=complement,
                )
            )
    else:
        raise ValueError(f"unknown scheme {scheme!r}")
    return MultiCopyEmbedding(
        host, copies[0].guest, copies, name=f"naive-{scheme}-ccc-{n}"
    )
