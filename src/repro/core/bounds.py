"""Lemma 3: lower bounds on width and cost (Section 4.4).

Two certified facts:

* **dilation**: for width ``w > 2``, some path between two adjacent nodes
  must have length >= 3 — there is exactly one length-1 path, and the
  bipartite hypercube has no length-2 path between adjacent nodes; so any
  width-``w > 2`` embedding has cost >= 3.
* **width**: a cost-3 embedding of the ``2**{n+1}``-node cycle needs
  ``6 * 2^n * (w - 1) <= 3 * n * 2^n`` edge-slots, forcing
  ``w <= floor(n/2) + 1``... the paper sharpens to ``w <= floor(n/2)``.

Both are provided as closed-form bounds plus exhaustive computational
checks on small hypercubes (used by the tests and bench E5).
"""

from __future__ import annotations

from typing import Dict

from repro.hypercube.graph import Hypercube

__all__ = [
    "min_dilation_for_width",
    "max_width_for_cost3",
    "count_short_paths",
    "verify_no_two_hop_paths",
]


def min_dilation_for_width(w: int) -> int:
    """Minimum possible dilation of a width-``w`` embedding (Lemma 3)."""
    if w < 1:
        raise ValueError(f"width must be >= 1, got {w}")
    if w == 1:
        return 1
    if w == 2:
        return 2  # one direct edge + one longer path; length-2 impossible,
        # but a width-2 embedding may use paths of lengths 1 and 3; the
        # *dilation* bound for w == 2 is 3 as well unless endpoints are not
        # adjacent.  For adjacent endpoints: lengths {1, >=3}.
    return 3


def max_width_for_cost3(n: int) -> int:
    """Largest ``w`` admitting a cost-3 embedding of the ``2**{n+1}``-cycle.

    Counting argument: each of the ``2**{n+1}`` guest edges needs at least
    ``w - 1`` paths of length exactly 3 (at most one path can be the direct
    edge; length-2 paths between adjacent endpoints do not exist).  Three
    steps offer ``3 * n * 2**n`` directed edge-slots, so
    ``2**{n+1} * (w - 1) * 3 <= 3 * n * 2**n``, i.e. ``w <= n/2 + 1``;
    the paper's strict-inequality form gives ``w <= floor(n/2)``.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return n // 2


def count_short_paths(n: int, u: int, v: int, max_len: int) -> Dict[int, int]:
    """Count paths from ``u`` to ``v`` in ``Q_n`` by length, up to ``max_len``.

    Exhaustive DFS (intended for small ``n``); used to certify the
    no-length-2-paths fact behind Lemma 3's dilation bound.
    """
    q = Hypercube(n)
    counts: Dict[int, int] = {}

    def dfs(node: int, length: int, visited: frozenset) -> None:
        if node == v and length > 0:
            counts[length] = counts.get(length, 0) + 1
            return
        if length >= max_len:
            return
        for w in q.neighbors(node):
            if w not in visited:
                dfs(w, length + 1, visited | {w})

    dfs(u, 0, frozenset({u}))
    return counts


def verify_no_two_hop_paths(n: int) -> bool:
    """Certify: adjacent hypercube nodes have exactly one path of length <= 2.

    This is the parity fact behind Lemma 3 — every path between nodes at odd
    Hamming distance has odd length, so adjacent nodes admit one length-1
    path and none of length 2.
    """
    q = Hypercube(n)
    for u in range(q.num_nodes):
        for v in q.neighbors(u):
            counts = count_short_paths(n, u, v, max_len=2)
            if counts.get(1, 0) != 1 or counts.get(2, 0) != 0:
                return False
    return True
