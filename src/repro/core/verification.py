"""Structured verification reports (the new shape of ``verify()``).

Historically every ``verify()`` in this package either returned ``None`` or
raised ``AssertionError`` at the first broken invariant — fine for tests,
useless for a service that wants to *report* what it checked.  A
:class:`VerificationReport` keeps both audiences happy: it lists each
invariant with pass/fail and detail, carries the measured embedding
quantities (load, dilation, congestion, width, ...), and
:meth:`VerificationReport.raise_if_failed` reproduces the old raising
behavior — which ``verify(strict=True)``, the default, still invokes, so
sixty-odd existing call sites keep their exception semantics unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Tuple

__all__ = [
    "InvariantCheck",
    "VerificationReport",
    "register_oracle",
    "oracles_for",
    "run_oracles",
]


@dataclass(frozen=True)
class InvariantCheck:
    """One verified invariant: name, pass/fail, human-readable detail."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """Outcome of verifying one embedding.

    ``checks`` lists the invariants in the order they ran; verification
    stops at the first failure (later invariants assume earlier ones), so a
    failed report ends with its failing check.  ``metrics`` holds the
    measured quantities (load, dilation, congestion, width, ...) — present
    only when every structural check passed, since a broken embedding has
    no trustworthy measurements.
    """

    subject: str
    checks: Tuple[InvariantCheck, ...]
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def __bool__(self) -> bool:
        return self.ok

    @property
    def failures(self) -> Tuple[InvariantCheck, ...]:
        return tuple(c for c in self.checks if not c.passed)

    def check(self, name: str) -> InvariantCheck:
        """The named invariant's result (KeyError if it never ran)."""
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(f"no invariant named {name!r} in this report")

    def raise_if_failed(self) -> "VerificationReport":
        """Raise ``AssertionError`` on the first failed invariant (legacy)."""
        for c in self.checks:
            if not c.passed:
                raise AssertionError(c.detail or c.name)
        return self

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
            "metrics": dict(self.metrics),
        }


# -- construction oracles -----------------------------------------------------
#
# ``verify()`` checks what *any* embedding must satisfy (well-formed maps,
# hops are edges, disjointness).  An *oracle* checks what one particular
# construction additionally promises — e.g. Theorem 1's width/dilation
# claims for the load-1 cycle.  Oracles register by construction kind (the
# service-layer spec vocabulary) so the QA fuzzer can certify every sampled
# point against the paper's numbers, not just against well-formedness.

# an oracle takes (built object, params dict) and yields InvariantChecks
OracleFn = Callable[[Any, Dict[str, Any]], Iterable[InvariantCheck]]

_ORACLES: Dict[str, List[OracleFn]] = {}


def register_oracle(kind: str) -> Callable[[OracleFn], OracleFn]:
    """Class-level decorator: attach an oracle to a construction kind.

    Registering is additive — several oracles may guard one kind — and
    idempotent per function object (re-importing a module of oracles does
    not double-register).
    """

    def decorate(fn: OracleFn) -> OracleFn:
        fns = _ORACLES.setdefault(kind, [])
        if fn not in fns:
            fns.append(fn)
        return fn

    return decorate


def oracles_for(kind: str) -> Tuple[OracleFn, ...]:
    """All oracles registered for ``kind`` (empty tuple when none)."""
    return tuple(_ORACLES.get(kind, ()))


def run_oracles(kind: str, subject: Any, params: Dict[str, Any]) -> Tuple[InvariantCheck, ...]:
    """Run every oracle of ``kind``; an oracle that raises becomes a failed
    check (oracles are judges, never crashers)."""
    out: List[InvariantCheck] = []
    for fn in oracles_for(kind):
        name = getattr(fn, "__name__", "oracle")
        try:
            out.extend(fn(subject, params))
        except Exception as err:  # noqa: BLE001 - report, don't crash the fuzzer
            out.append(
                InvariantCheck(
                    f"oracle:{name}", False, f"oracle raised {type(err).__name__}: {err}"
                )
            )
    return tuple(out)
