"""Structured verification reports (the new shape of ``verify()``).

Historically every ``verify()`` in this package either returned ``None`` or
raised ``AssertionError`` at the first broken invariant — fine for tests,
useless for a service that wants to *report* what it checked.  A
:class:`VerificationReport` keeps both audiences happy: it lists each
invariant with pass/fail and detail, carries the measured embedding
quantities (load, dilation, congestion, width, ...), and
:meth:`VerificationReport.raise_if_failed` reproduces the old raising
behavior — which ``verify(strict=True)``, the default, still invokes, so
sixty-odd existing call sites keep their exception semantics unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = ["InvariantCheck", "VerificationReport"]


@dataclass(frozen=True)
class InvariantCheck:
    """One verified invariant: name, pass/fail, human-readable detail."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """Outcome of verifying one embedding.

    ``checks`` lists the invariants in the order they ran; verification
    stops at the first failure (later invariants assume earlier ones), so a
    failed report ends with its failing check.  ``metrics`` holds the
    measured quantities (load, dilation, congestion, width, ...) — present
    only when every structural check passed, since a broken embedding has
    no trustworthy measurements.
    """

    subject: str
    checks: Tuple[InvariantCheck, ...]
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def __bool__(self) -> bool:
        return self.ok

    @property
    def failures(self) -> Tuple[InvariantCheck, ...]:
        return tuple(c for c in self.checks if not c.passed)

    def check(self, name: str) -> InvariantCheck:
        """The named invariant's result (KeyError if it never ran)."""
        for c in self.checks:
            if c.name == name:
                return c
        raise KeyError(f"no invariant named {name!r} in this report")

    def raise_if_failed(self) -> "VerificationReport":
        """Raise ``AssertionError`` on the first failed invariant (legacy)."""
        for c in self.checks:
            if not c.passed:
                raise AssertionError(c.detail or c.name)
        return self

    def to_dict(self) -> dict:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks": [
                {"name": c.name, "passed": c.passed, "detail": c.detail}
                for c in self.checks
            ],
            "metrics": dict(self.metrics),
        }
