"""Theorem 4: the general multiple-copy -> multiple-path transform (Section 6).

Given an ``n``-copy embedding of a graph ``G`` (with ``2**n`` vertices) in
``Q_n``, the *induced cross product* ``X(G)`` places the automorph
``G_{phi_{M(i)}}`` on row ``i`` and ``G_{phi_{M(j)}}`` on column ``j`` of the
``2**n x 2**n`` grid view of ``Q_{2n}`` (``M`` is the moment function).  Each
edge of ``X(G)`` is widened to ``n`` paths that cross into a neighboring
row/column, follow the projected image there, and cross back.

Because the ``n`` neighbors of a row have distinct moments (Lemma 2), the
projections landing in any one row together form exactly the original n-copy
embedding — so the middle hops cost ``c`` (the multicopy's one-packet cost)
and the first/last hops cost ``delta`` (max out-degree) each, giving
n-packet cost ``c + 2 * delta``.

When ``n`` is a power of two the moment labels hit the ``n`` copies exactly
and the middle congestion equals the multicopy congestion.  For other ``n``
(e.g. Theorem 5's ``n = m + log m``) the labels are folded onto the copy
list modulo its length; distinct labels may then share a copy, which at most
doubles the middle congestion — still O(1), which is all Theorems 4/5 need.
The achieved numbers are measured and recorded in ``info``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.embedding import MultiCopyEmbedding, MultiPathEmbedding
from repro.hypercube.graph import Hypercube
from repro.hypercube.moments import moment
from repro.networks.base import ExplicitGraph

__all__ = [
    "induced_cross_product_embedding",
    "theorem4_claim",
    "automorph_graph",
    "generalized_cross_product",
]


def theorem4_claim(multicopy: MultiCopyEmbedding) -> Dict[str, int]:
    """Paper claim: width n, n-packet cost c + 2*delta."""
    n = multicopy.host.n
    delta = multicopy.guest.max_out_degree
    # one-packet cost of the multicopy embedding: between max(dil, cong) and
    # dil * cong; we use the simple upper bound the paper's examples use
    c = multicopy.dilation * multicopy.edge_congestion
    return {"width": n, "cost_upper": c + 2 * delta, "delta": delta, "c": c}


def induced_cross_product_embedding(
    multicopy: MultiCopyEmbedding,
) -> MultiPathEmbedding:
    """Build the width-n embedding of ``X(G)`` in ``Q_{2n}`` (Theorem 4).

    Requires every copy of the multicopy embedding to map ``G`` bijectively
    onto the nodes of ``Q_n``, exactly ``n`` copies (repeat copies to pad if
    needed, as Theorem 5 does), and ``n`` a power of two.
    """
    n = multicopy.host.n
    size = 1 << n
    if multicopy.k < 1:
        raise ValueError("multicopy embedding has no copies")
    guest_g = multicopy.guest
    if guest_g.num_vertices != size:
        raise ValueError("each copy must be a bijection onto Q_n's nodes")

    host = Hypercube(2 * n)
    copies = multicopy.copies
    for c in copies:
        if len(set(c.vertex_map.values())) != size:
            raise ValueError("copy vertex map is not a bijection")

    g_edges = list(guest_g.edges())

    # X(G) vertices are host nodes (i << n) | j directly.
    vertices = range(1 << (2 * n))
    edges: List[Tuple[int, int]] = []
    edge_paths: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]] = {}

    num_copies = len(copies)
    for i in range(size):  # rows and columns share the index range
        row_copy = copies[moment(i) % num_copies]
        for (gu, gv) in g_edges:
            base_path = row_copy.edge_paths[(gu, gv)]
            # row i: the path lives in the low bits
            row_path = tuple((i << n) | x for x in base_path)
            _add_widened(host, edges, edge_paths, row_path, detour_base=n, n=n)
            # column i: the path lives in the high bits
            col_path = tuple((x << n) | i for x in base_path)
            _add_widened(host, edges, edge_paths, col_path, detour_base=0, n=n)

    guest = ExplicitGraph(vertices, edges, name=f"X({guest_g!r})")
    vertex_map = {v: v for v in vertices}
    emb = MultiPathEmbedding(
        host,
        guest,
        vertex_map,
        edge_paths,
        name=f"theorem4-X-Q{2 * n}",
        load_allowed=1,
    )
    emb.info = {
        "n": n,
        "claim": theorem4_claim(multicopy),
        "copy_dilation": multicopy.dilation,
        "copy_congestion": multicopy.edge_congestion,
    }
    return emb


def _add_widened(
    host: Hypercube,
    edges: List[Tuple[int, int]],
    edge_paths: Dict[Tuple[int, int], Tuple[Tuple[int, ...], ...]],
    path: Tuple[int, ...],
    detour_base: int,
    n: int,
) -> None:
    """Widen one X(G) edge whose image is ``path`` with n parallel detours.

    Path ``k`` crosses dimension ``detour_base + k``, follows the projection
    of the whole image path, and crosses back.
    """
    hu, hv = path[0], path[-1]
    paths = []
    for k in range(n):
        d = 1 << (detour_base + k)
        paths.append((hu,) + tuple(x ^ d for x in path) + (hv,))
    edges.append((hu, hv))
    edge_paths[(hu, hv)] = tuple(paths)


def automorph_graph(guest, phi) -> "ExplicitGraph":
    """The graph ``G_phi``: relabel every edge by the automorphism ``phi``.

    Section 6: "the graph G_phi is defined as the graph with vertex set Z_N
    and edge set {(phi(u), phi(v)) | (u, v) in E}".
    """
    vertices = sorted(phi(v) for v in guest.vertices())
    edges = [(phi(u), phi(v)) for (u, v) in guest.edges()]
    return ExplicitGraph(vertices, edges, name="automorph")


def generalized_cross_product(rows, cols) -> "ExplicitGraph":
    """Section 6's generalized cross product of two graph families.

    ``rows[i]`` induces the subgraph on row ``i`` and ``cols[j]`` on column
    ``j``; vertices are pairs ``(i, j)`` over ``Z_N x Z_N``.  When every
    ``rows[i]`` equals G and every ``cols[j]`` equals H this is the ordinary
    cross product ``G x H`` (asserted in the tests).
    """
    rows, cols = list(rows), list(cols)
    if len(rows) != len(cols):
        raise ValueError("need equally many row and column graphs")
    vertex_sets = [tuple(sorted(g.vertices())) for g in rows + cols]
    base = vertex_sets[0]
    if any(vs != base for vs in vertex_sets):
        raise ValueError("all factors must share one vertex set")
    if len(rows) != len(base):
        raise ValueError("need one row and one column graph per vertex value")
    index = {v: pos for pos, v in enumerate(base)}
    vertices = [(i, j) for i in base for j in base]
    edges = []
    for i in base:
        for (j1, j2) in rows[index[i]].edges():
            edges.append(((i, j1), (i, j2)))
    for j in base:
        for (i1, i2) in cols[index[j]].edges():
            edges.append(((i1, j), (i2, j)))
    return ExplicitGraph(vertices, edges, name="generalized-cross-product")
