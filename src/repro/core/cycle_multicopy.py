"""Cycle embeddings: the classical gray-code baseline and Lemma 1 copies.

* :func:`graycode_cycle_embedding` — Figure 1's classical binary reflected
  gray code embedding of the directed cycle (dilation 1, congestion 1, but
  it leaves ``n - 1`` of the ``n`` outgoing links of every node idle, which
  is the inefficiency the paper attacks);
* :func:`cycle_multicopy_embedding` — Lemma 1: ``n`` (n even) or ``n - 1``
  (n odd) copies of the ``2**n``-node directed cycle with dilation 1 and
  congestion 1.
"""

from __future__ import annotations

from repro.core.embedding import Embedding, MultiCopyEmbedding
from repro.hypercube.graph import Hypercube
from repro.hypercube.graycode import gray_node_sequence
from repro.hypercube.hamiltonian import directed_hamiltonian_decomposition
from repro.networks.cycle import DirectedCycle

__all__ = ["graycode_cycle_embedding", "cycle_multicopy_embedding"]


def _cycle_embedding_from_nodes(host: Hypercube, nodes, name: str) -> Embedding:
    length = len(nodes)
    guest = DirectedCycle(length)
    vertex_map = {i: nodes[i] for i in range(length)}
    edge_paths = {
        (i, (i + 1) % length): (nodes[i], nodes[(i + 1) % length])
        for i in range(length)
    }
    return Embedding(host, guest, vertex_map, edge_paths, name=name)


def graycode_cycle_embedding(n: int) -> Embedding:
    """The classical gray-code embedding of the ``2**n``-cycle in ``Q_n``.

    Every directed cycle edge maps to a single hypercube link (dilation 1,
    congestion 1).  Section 2 of the paper shows its ``m``-packet cost is
    ``m`` per node sequentially — and at least ``m/2`` for *any* strategy
    confined to these single paths, because dimension 0 carries ``m*2^{n-1}``
    packets over ``2^n`` directed edges.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    host = Hypercube(n)
    return _cycle_embedding_from_nodes(
        host, gray_node_sequence(n), name=f"graycode-cycle-Q{n}"
    )


def cycle_multicopy_embedding(n: int) -> MultiCopyEmbedding:
    """Lemma 1: edge-disjoint directed Hamiltonian cycles as a k-copy embedding.

    For even ``n`` this yields ``n`` copies; for odd ``n``, ``n - 1`` copies
    (the perfect matching cannot be oriented into a cycle).  Dilation 1 and
    total edge-congestion 1 — every directed hypercube edge carries at most
    one cycle edge across *all* copies.
    """
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    host = Hypercube(n)
    copies = [
        _cycle_embedding_from_nodes(host, cyc, name=f"lemma1-copy{i}-Q{n}")
        for i, cyc in enumerate(directed_hamiltonian_decomposition(n))
    ]
    return MultiCopyEmbedding(host, copies[0].guest, copies, name=f"lemma1-Q{n}")
