"""Multiple-copy embeddings of grids (Section 8.1).

"Multiple-copy embeddings of grids can be formed from the multiple-copy
embeddings of cycles by the same squaring technique combined with cross
product decomposition used to convert the multiple-path embeddings of
cycles to multiple-path embeddings of grids."

Each axis of a power-of-two torus lives in its own factor subcube; copy
``c`` of the torus uses directed Hamiltonian cycle ``c`` of every factor,
so different copies never share a link: ``a`` edge-disjoint torus copies
(``a`` = factor dimension, even) with dilation 1 and congestion 1.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.embedding import Embedding, MultiCopyEmbedding
from repro.hypercube.graph import Hypercube
from repro.hypercube.hamiltonian import directed_hamiltonian_decomposition
from repro.networks.grid import DirectedTorus

__all__ = ["grid_multicopy_embedding"]


def grid_multicopy_embedding(dims) -> MultiCopyEmbedding:
    """Embed ``a`` copies of a power-of-two k-axis torus in ``Q_{k*a}``.

    All sides must equal the same power of two ``2^a`` with ``a`` even
    (Lemma 1's directed form per factor).  The guest is the *directed*
    torus (one orientation per link, matching Lemma 1's directed cycles).
    Copy ``c`` maps grid coordinate ``x`` on axis ``i`` to position ``x`` of
    directed cycle ``c`` of factor ``i``; every copy has dilation 1 and the
    copies are pairwise (and internally) edge-disjoint: total congestion 1.
    """
    dims = tuple(int(d) for d in dims)
    if not dims:
        raise ValueError("need at least one axis")
    side = dims[0]
    if any(d != side for d in dims):
        raise ValueError("multicopy grids need equal sides")
    a = side.bit_length() - 1
    if side != 1 << a or a < 2 or a % 2:
        raise ValueError("side must be 2^a with a even and >= 2")
    k = len(dims)
    host = Hypercube(a * k)
    guest = DirectedTorus(dims)
    cycles = directed_hamiltonian_decomposition(a)  # a directed cycles

    copies: List[Embedding] = []
    for c, cyc in enumerate(cycles):
        succ = {cyc[i]: cyc[(i + 1) % len(cyc)] for i in range(len(cyc))}
        pred = {v: u for u, v in succ.items()}

        def node(coord: Tuple[int, ...]) -> int:
            out = 0
            for i, x in enumerate(coord):
                out |= cyc[x] << (i * a)
            return out

        vertex_map = {v: node(v) for v in guest.vertices()}
        edge_paths: Dict[Tuple, Tuple[int, ...]] = {}
        for (u, v) in guest.edges():
            axis = next(i for i in range(k) if u[i] != v[i])
            step = (v[axis] - u[axis]) % side
            hu = vertex_map[u]
            mask = ((1 << a) - 1) << (axis * a)
            part = (hu & mask) >> (axis * a)
            nxt = succ[part] if step == 1 else pred[part]
            hv = (hu & ~mask) | (nxt << (axis * a))
            assert hv == vertex_map[v]
            edge_paths[(u, v)] = (hu, hv)
        copies.append(
            Embedding(host, guest, vertex_map, edge_paths, name=f"grid-copy{c}")
        )
    return MultiCopyEmbedding(
        host, guest, copies, name=f"grid-multicopy-{'x'.join(map(str, dims))}"
    )
