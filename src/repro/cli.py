"""Command-line interface: build, verify, cache, route and report.

Usage examples::

    python -m repro --version
    python -m repro figures --n 8
    python -m repro embed cycle --n 8
    python -m repro embed cycle2 --n 10 --wide
    python -m repro embed grid --dims 16x16 --torus
    python -m repro embed ccc --n 4
    python -m repro embed tree --m 2
    python -m repro compare --n 6
    python -m repro broadcast --n 6 --packets 512
    python -m repro faults --n 8 --prob 0.05
    python -m repro scenarios ls                      # traffic generators
    python -m repro scenarios run bit-reversal --n 8 --load 0.5
    python -m repro scenarios campaign --n 8 --kill-links 4
    python -m repro scenarios sweep poisson --n 7 --loads 0.25,0.5,1.0
    python -m repro scenarios smoke --n 6
    python -m repro sweep utilization --n 10
    python -m repro save cycle emb.json --n 8 && python -m repro load emb.json
    python -m repro validate
    python -m repro cache build cycle --ns 6,8,10     # warm the registry
    python -m repro cache ls
    python -m repro cache stats
    python -m repro cache clear
    python -m repro route cycle --n 8 --edge 0 1      # w disjoint host paths
    python -m repro route cycle --n 8 --edge 0 1 --faults 0.05
    python -m repro route cycle --n 12 --batch 4096   # vectorized batch routing
    python -m repro serve cycle --n 12 --rate 50000 --requests 20000
    python -m repro obs report cycle --n 8            # instrumented delivery
    python -m repro obs trace cycle --n 8             # profiled build spans
    python -m repro obs export cycle --n 8 --format json
    python -m repro qa fuzz --seeds 200 --budget 120s # fuzz every construction
    python -m repro qa diff --seeds 50 --n 6          # simulator differential
    python -m repro qa corpus                         # list saved reproducers
    python -m repro qa replay <entry-id>              # re-run one reproducer
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _version() -> str:
    from repro import __version__

    return __version__


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Construction parameters shared by ``cache build`` and ``route``."""
    parser.add_argument(
        "kind", choices=["cycle", "cycle2", "grid", "ccc", "tree", "large-cycle"]
    )
    parser.add_argument("--n", type=int, default=8, help="hypercube dimension")
    parser.add_argument("--m", type=int, default=2, help="butterfly levels (tree)")
    parser.add_argument("--dims", type=str, default="16x16", help="grid sides, AxBxC")
    parser.add_argument("--torus", action="store_true", help="wraparound grid")
    parser.add_argument("--wide", action="store_true", help="Theorem 2 width variant")
    parser.add_argument(
        "--cache-dir", type=str, default=None,
        help="registry directory (default $REPRO_CACHE_DIR or ~/.cache/repro)",
    )


def _spec_from_args(args, n=None):
    from repro.service import EmbeddingSpec

    n = args.n if n is None else n
    if args.kind == "cycle2":
        return EmbeddingSpec.make("cycle2", n=n, wide=args.wide)
    if args.kind == "grid":
        dims = tuple(int(x) for x in args.dims.lower().split("x"))
        return EmbeddingSpec.make("grid", dims=dims, torus=args.torus)
    if args.kind == "tree":
        return EmbeddingSpec.make("tree", m=args.m)
    return EmbeddingSpec.make(args.kind, n=n)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Routing Multiple Paths in Hypercubes (Greenberg & "
        "Bhatt, SPAA 1990) — reproduction toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_campaign_args(p) -> None:
        p.add_argument("--n", type=int, default=8, help="hypercube dimension")
        p.add_argument("--load", type=float, default=1.0)
        p.add_argument("--horizon", type=int, default=8)
        p.add_argument("--kill-links", type=int, default=0)
        p.add_argument("--kill-nodes", type=int, default=0)
        p.add_argument(
            "--kill-step", default="0",
            help="step faults activate (0 = from the start, "
            "'auto' = half the fault-free makespan)",
        )
        p.add_argument("--width", type=int, default=None)
        p.add_argument("--pieces", type=int, default=None)
        p.add_argument("--seed", default="0")
        p.add_argument(
            "--engine", choices=["fast", "reference", "batched"],
            default="fast",
        )

    fig = sub.add_parser("figures", help="print the paper's Figures 1-4")
    fig.add_argument("--n", type=int, default=8, help="hypercube dimension")

    emb = sub.add_parser("embed", help="build, verify and report an embedding")
    emb.add_argument(
        "kind", choices=["cycle", "cycle2", "grid", "ccc", "tree", "large-cycle"]
    )
    emb.add_argument("--n", type=int, default=8, help="hypercube dimension")
    emb.add_argument("--m", type=int, default=2, help="butterfly levels (tree)")
    emb.add_argument("--dims", type=str, default="16x16", help="grid sides, AxBxC")
    emb.add_argument("--torus", action="store_true", help="wraparound grid")
    emb.add_argument("--wide", action="store_true", help="Theorem 2 width variant")

    cmp_ = sub.add_parser("compare", help="compare the three embedding styles")
    cmp_.add_argument("--n", type=int, default=6, help="hypercube dimension (even)")

    bc = sub.add_parser("broadcast", help="one-to-all broadcast comparison")
    bc.add_argument("--n", type=int, default=6)
    bc.add_argument("--packets", type=int, default=512)

    flt = sub.add_parser(
        "faults",
        help="fault campaign: single-path vs IDA failover under link kills",
    )
    _add_campaign_args(flt)
    flt.add_argument(
        "--prob", type=float, default=None,
        help="legacy alias: fail each link with this probability "
        "(overrides --kill-links/--kill-nodes)",
    )

    scn = sub.add_parser(
        "scenarios", help="adversarial traffic scenarios and fault campaigns"
    )
    scn_sub = scn.add_subparsers(dest="scenarios_command", required=True)
    scn_sub.add_parser("ls", help="list the registered traffic generators")
    sr = scn_sub.add_parser("run", help="build a scenario and route it")
    sr.add_argument("scenario", help="generator name (see: scenarios ls)")
    sr.add_argument("--n", type=int, default=8)
    sr.add_argument("--load", type=float, default=1.0)
    sr.add_argument("--horizon", type=int, default=8)
    sr.add_argument("--seed", default="0")
    sr.add_argument(
        "--engine", choices=["fast", "reference", "batched"], default="fast"
    )
    sc = scn_sub.add_parser(
        "campaign", help="kill links/nodes, compare with vs without IDA"
    )
    sc.add_argument("scenario", nargs="?", default="permutation")
    _add_campaign_args(sc)
    sc.add_argument("--json", action="store_true", help="emit the full report")
    sw = scn_sub.add_parser(
        "sweep", help="saturation sweep: offered vs accepted load, latency"
    )
    sw.add_argument("scenario")
    sw.add_argument("--n", type=int, default=8)
    sw.add_argument(
        "--loads", type=str, default="0.1,0.25,0.5,0.75,1.0,1.5",
        help="comma-separated offered loads",
    )
    sw.add_argument("--horizon", type=int, default=32)
    sw.add_argument("--seed", default="0")
    sw.add_argument(
        "--engine", choices=["fast", "reference", "batched"], default="fast"
    )
    sm = scn_sub.add_parser(
        "smoke", help="every generator builds and routes on both engines"
    )
    sm.add_argument("--n", type=int, default=6)

    swp = sub.add_parser("sweep", help="run one of the measured series")
    swp.add_argument(
        "series",
        choices=["speedup", "utilization", "faults", "broadcast"],
    )
    swp.add_argument("--n", type=int, default=8)

    sav = sub.add_parser("save", help="build an embedding and write JSON")
    sav.add_argument("kind", choices=["cycle", "cycle2", "grid"])
    sav.add_argument("path", help="output file")
    sav.add_argument("--n", type=int, default=8)
    sav.add_argument("--dims", type=str, default="16x16")
    sav.add_argument("--torus", action="store_true")

    lod = sub.add_parser("load", help="load, re-verify and report a JSON embedding")
    lod.add_argument("path", help="input file")

    sub.add_parser("validate", help="re-certify every theorem claim")

    cache = sub.add_parser("cache", help="manage the embedding registry")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cb = cache_sub.add_parser("build", help="build embeddings into the cache")
    _add_spec_arguments(cb)
    cb.add_argument(
        "--ns", type=str, default=None,
        help="comma-separated sweep of --n values built as one batch",
    )
    cb.add_argument(
        "--workers", type=int, default=None,
        help="worker processes for batch builds (0 = in-process serial)",
    )
    for name, help_text in [
        ("ls", "list cached artifacts"),
        ("clear", "remove every cached artifact (and sweep orphans)"),
        ("stats", "print registry counters, timers and tier occupancy"),
    ]:
        p = cache_sub.add_parser(name, help=help_text)
        p.add_argument("--cache-dir", type=str, default=None)
    cm = cache_sub.add_parser(
        "migrate", help="upgrade legacy JSON artifacts to memmapped store files"
    )
    cm.add_argument("--cache-dir", type=str, default=None)
    cm.add_argument(
        "--verify", action="store_true",
        help="re-hash each freshly written payload after migration",
    )

    rt = sub.add_parser(
        "route", help="serve the disjoint host paths for one guest edge"
    )
    _add_spec_arguments(rt)
    rt.add_argument(
        "--edge", nargs=2, default=None, metavar=("U", "V"),
        help="guest edge endpoints (python literals; default: first edge)",
    )
    rt.add_argument(
        "--faults", type=float, default=None,
        help="inject random link faults with this probability",
    )
    rt.add_argument("--seed", type=int, default=0)
    rt.add_argument(
        "--pieces", type=int, default=None,
        help="IDA pieces needed to reconstruct (default 1: max tolerance)",
    )
    rt.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="resolve N randomly drawn guest edges in one route_batch call "
        "and report the sustained request rate",
    )

    srv = sub.add_parser(
        "serve",
        help="open-loop load harness over the batching serve() front-end",
    )
    _add_spec_arguments(srv)
    srv.add_argument(
        "--rate", type=float, default=20000.0,
        help="offered Poisson arrival rate, requests/s (default 20000)",
    )
    srv.add_argument(
        "--requests", type=int, default=10000,
        help="total requests to offer (default 10000)",
    )
    srv.add_argument(
        "--max-batch", type=int, default=1024,
        help="largest micro-batch the front-end coalesces (default 1024)",
    )
    srv.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="batching delay budget in milliseconds (default 2.0)",
    )
    srv.add_argument("--seed", type=int, default=0)

    obs = sub.add_parser(
        "obs", help="instrumented simulation: report, trace, export"
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    orep = obs_sub.add_parser(
        "report",
        help="simulate a one-packet-per-path delivery and report link stats",
    )
    otr = obs_sub.add_parser(
        "trace", help="build with profiling enabled and print the span tree"
    )
    oex = obs_sub.add_parser(
        "export", help="run the instrumented delivery and export the snapshot"
    )
    for p in (orep, otr, oex):
        _add_spec_arguments(p)
        p.add_argument(
            "--packets", type=int, default=1,
            help="packets per path (released one per step)",
        )
    oex.add_argument(
        "--format", choices=["json", "csv"], default="json",
        help="export format",
    )
    oex.add_argument(
        "--output", type=str, default=None,
        help="write to this file instead of stdout",
    )

    bn = sub.add_parser(
        "bench",
        help="time the fast engines against their references; write "
        "BENCH_perf.json and optionally gate on a committed baseline",
    )
    bn.add_argument(
        "--quick", action="store_true",
        help="CI smoke subset only (small workloads)",
    )
    bn.add_argument(
        "--workloads", type=str, default=None,
        help="comma-separated workload names (default: all, or the quick set)",
    )
    bn.add_argument(
        "--output", type=str, default="BENCH_perf.json",
        help="where to write the trajectory (default BENCH_perf.json)",
    )
    bn.add_argument(
        "--baseline", type=str, default=None,
        help="gate measured speedups against this BENCH_perf.json",
    )
    bn.add_argument(
        "--max-regression", type=float, default=0.25,
        help="largest tolerated speedup drop vs baseline (default 0.25)",
    )
    bn.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per engine; best-of wins (default 3)",
    )
    bn.add_argument(
        "--list", action="store_true", help="list workload names and exit"
    )

    qa = sub.add_parser(
        "qa", help="fuzzing, metamorphic and differential QA harness"
    )
    qa_sub = qa.add_subparsers(dest="qa_command", required=True)
    qf = qa_sub.add_parser(
        "fuzz", help="fuzz the construction space with every oracle armed"
    )
    qf.add_argument("--seeds", type=int, default=200, help="points to fuzz")
    qf.add_argument(
        "--budget", type=str, default=None,
        help="wall-clock budget, e.g. 120s or 5m (default: none)",
    )
    qf.add_argument("--seed", type=int, default=0, help="base RNG seed")
    qf.add_argument(
        "--kinds", type=str, default=None,
        help="comma-separated construction kinds (default: all)",
    )
    qf.add_argument(
        "--images", type=int, default=4,
        help="automorphism images per point (metamorphic stage)",
    )
    qd = qa_sub.add_parser(
        "diff", help="differential-test the two simulator engines"
    )
    qd.add_argument("--seeds", type=int, default=50, help="random schedules")
    qd.add_argument("--n", type=int, default=6, help="hypercube dimension")
    qd.add_argument("--seed", type=int, default=0, help="base RNG seed")
    qd.add_argument(
        "--packets", type=int, default=40, help="max packets per schedule"
    )
    qb = qa_sub.add_parser(
        "batched", help="differential-test the batched tensor engines"
    )
    qb.add_argument("--seeds", type=int, default=100, help="random batches")
    qb.add_argument("--n", type=int, default=4, help="hypercube dimension")
    qb.add_argument("--seed", type=int, default=0, help="base RNG seed")
    qb.add_argument(
        "--lanes", type=int, default=4, help="max lanes per batch"
    )
    qr = qa_sub.add_parser("replay", help="re-run a saved reproducer")
    qr.add_argument("entry", help="corpus entry id or path to its JSON file")
    qc = qa_sub.add_parser("corpus", help="list (or clear) saved reproducers")
    qc.add_argument("--clear", action="store_true", help="delete every entry")
    for p in (qf, qr, qc):
        p.add_argument(
            "--corpus", type=str, default=None,
            help="corpus directory (default $REPRO_QA_CORPUS or "
            "~/.cache/repro/qa-corpus)",
        )

    lint = sub.add_parser(
        "lint",
        help="domain-aware static analysis (RNG discipline, deprecations, "
        "construction contract, simulator protocol, determinism, races, "
        "index-domain dataflow, dtype overflow, kernel-parity coverage)",
    )
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply mechanical fixes (deprecated-import rewrites) in place",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (json is the stable schema in EXPERIMENTS.md; "
        "sarif is the 2.1.0 log CI turns into annotations)",
    )
    lint.add_argument(
        "--select", type=str, default=None,
        help="comma-separated rule ids to run, e.g. R1,R6 (default: all)",
    )
    lint.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="BASE",
        help="only report findings in files changed vs BASE (git diff; "
        "default HEAD) plus untracked files — project-scoped rules still "
        "reason over the full module set",
    )
    lint.add_argument(
        "--output", type=str, default=None, metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the registered rules and their waiver pragmas, then exit",
    )

    return parser


def _cmd_figures(args) -> int:
    from repro.analysis import figure1, figure2, figure3, figure4

    print(figure1(min(args.n, 4)))
    print()
    print(figure2(args.n if args.n % 4 else args.n + 3))
    print()
    print(figure3(4))
    print()
    print(figure4(max(args.n, 8)))
    return 0


def _cmd_embed(args) -> int:
    from repro.analysis import report

    if args.kind == "cycle":
        from repro.core import embed_cycle_load1

        emb = embed_cycle_load1(args.n)
    elif args.kind == "cycle2":
        from repro.core import embed_cycle_load2

        emb = embed_cycle_load2(args.n, prefer_width=args.wide)
    elif args.kind == "grid":
        from repro.core import embed_grid_multipath

        dims = tuple(int(x) for x in args.dims.lower().split("x"))
        emb = embed_grid_multipath(dims, torus=args.torus)
    elif args.kind == "ccc":
        from repro.core import ccc_multicopy_embedding

        emb = ccc_multicopy_embedding(args.n)
    elif args.kind == "tree":
        from repro.core import theorem5_embedding

        emb = theorem5_embedding(args.m)
    else:  # large-cycle
        from repro.core import large_cycle_embedding

        emb = large_cycle_embedding(args.n)
    emb.verify()
    print("verified OK")
    print(report(emb))
    info = getattr(emb, "info", None)
    if info and "claim" in info:
        print(f"  paper claim     {info['claim']}")
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis import compare_embeddings
    from repro.core import (
        cycle_multicopy_embedding,
        embed_cycle_load1,
        graycode_cycle_embedding,
        large_cycle_embedding,
    )

    n = args.n
    if n % 2:
        print("compare needs even n (Lemma 1's directed form)", file=sys.stderr)
        return 2
    print(
        compare_embeddings(
            {
                "graycode": graycode_cycle_embedding(n),
                "multipath": embed_cycle_load1(n) if n >= 4 else
                graycode_cycle_embedding(n),
                "multicopy": cycle_multicopy_embedding(n),
                "large-copy": large_cycle_embedding(n),
            }
        )
    )
    return 0


def _cmd_broadcast(args) -> int:
    from repro.apps.one_to_all import broadcast_comparison

    print(f"one-to-all broadcast on Q_{args.n}")
    print(f"{'M':>8} {'binomial tree':>14} {'n Ham. cycles':>14}")
    for m, tree, cyc in broadcast_comparison(
        args.n, (args.packets // 4 or 1, args.packets, args.packets * 4)
    ):
        print(f"{m:>8} {tree:>14} {cyc:>14}")
    return 0


def _campaign_config(args, scenario: str):
    from repro.scenarios.campaign import CampaignConfig

    kill_step = (
        None if str(args.kill_step) == "auto" else int(args.kill_step)
    )
    prob = getattr(args, "prob", None)
    if prob is None and args.kill_links == 0 and args.kill_nodes == 0:
        # the historical `repro faults` default workload
        prob = 0.05
    return CampaignConfig(
        n=args.n,
        scenario=scenario,
        load=args.load,
        horizon=args.horizon,
        kill_links=args.kill_links,
        kill_nodes=args.kill_nodes,
        kill_step=kill_step,
        fault_prob=prob,
        width=args.width,
        pieces=args.pieces,
        seed=args.seed,
        engine=args.engine,
    )


def _cmd_faults(args) -> int:
    from repro.scenarios.campaign import run_campaign

    rep = run_campaign(_campaign_config(args, "permutation"))
    print(rep.format())
    return 0


def _cmd_scenarios(args) -> int:
    from repro.scenarios import (
        build_schedule,
        get_scenario,
        scenario_names,
        schedule_digest,
    )

    if args.scenarios_command == "ls":
        for name in scenario_names():
            gen = get_scenario(name)
            extras = (
                " (" + ", ".join(f"{k}={v}" for k, v in gen.defaults.items()) + ")"
                if gen.defaults
                else ""
            )
            print(f"{name:<14} {gen.description}{extras}")
        return 0

    if args.scenarios_command == "run":
        from repro.hypercube.graph import Hypercube
        from repro.obs import LinkRecorder
        from repro.routing.fast_simulator import FastStoreForward
        from repro.routing.simulator import StoreForwardSimulator

        host = Hypercube(args.n)
        schedule = build_schedule(
            args.scenario, host, load=args.load, horizon=args.horizon,
            seed=args.seed,
        )
        recorder = LinkRecorder(host)
        if args.engine == "batched":
            from repro.routing.batched import BatchedStoreForward

            [result] = BatchedStoreForward(host).run_many(
                [schedule], recorders=[recorder]
            )
        else:
            sim = (
                StoreForwardSimulator(host, tie_break="priority")
                if args.engine == "reference"
                else FastStoreForward(host)
            )
            result = sim.run(schedule, recorder=recorder)
        print(
            f"{args.scenario} on Q_{args.n}: load {args.load}, horizon "
            f"{args.horizon}, digest {schedule_digest(schedule)}"
        )
        print(
            f"  {result.delivered}/{result.injected} packets delivered, "
            f"makespan {result.makespan}, peak link congestion "
            f"{recorder.congestion} [{args.engine}]"
        )
        return 0

    if args.scenarios_command == "campaign":
        import json as _json

        from repro.scenarios.campaign import run_campaign

        rep = run_campaign(_campaign_config(args, args.scenario))
        if args.json:
            print(_json.dumps(rep.to_dict(), indent=2))
        else:
            print(rep.format())
        return 0

    if args.scenarios_command == "sweep":
        from repro.scenarios.sweeps import format_sweep_rows, saturation_sweep

        loads = [float(x) for x in args.loads.split(",") if x.strip()]
        rows = saturation_sweep(
            args.scenario, args.n, loads, horizon=args.horizon,
            seed=args.seed, engine=args.engine,
        )
        print(format_sweep_rows(rows))
        return 0

    # smoke: every registered generator builds and routes on both engines
    from repro.hypercube.graph import Hypercube
    from repro.routing.fast_simulator import FastStoreForward
    from repro.routing.simulator import StoreForwardSimulator

    host = Hypercube(args.n)
    failures = 0
    for name in scenario_names():
        schedule = build_schedule(
            name, host, load=0.5, horizon=4, seed=f"smoke:{name}"
        )
        rebuilt = build_schedule(
            name, host, load=0.5, horizon=4, seed=f"smoke:{name}"
        )
        ref = StoreForwardSimulator(host, tie_break="priority").run(schedule)
        fast = FastStoreForward(host).run(schedule)
        ok = (
            schedule_digest(schedule) == schedule_digest(rebuilt)
            and ref.measured() == fast.measured()
        )
        failures += not ok
        print(
            f"{'ok' if ok else 'FAIL':<5} {name:<14} "
            f"{len(schedule):>4} packet(s)  makespan {fast.makespan}"
        )
    return 1 if failures else 0


def _cmd_sweep(args) -> int:
    from repro.analysis import (
        broadcast_crossover_sweep,
        cycle_speedup_sweep,
        fault_tolerance_sweep,
        format_rows,
        utilization_sweep,
    )

    n = args.n
    if args.series == "speedup":
        rows = cycle_speedup_sweep(range(4, n + 1, 2))
    elif args.series == "utilization":
        rows = utilization_sweep(range(4, n + 2))
    elif args.series == "faults":
        rows = fault_tolerance_sweep(n, [0.01, 0.02, 0.05, 0.1])
    else:
        rows = broadcast_crossover_sweep(n, (8, 64, 512, 4096))
    print(format_rows(rows))
    return 0


def _cmd_save(args) -> int:
    from repro.core.serialize import to_json

    if args.kind == "cycle":
        from repro.core import embed_cycle_load1

        emb = embed_cycle_load1(args.n)
    elif args.kind == "cycle2":
        from repro.core import embed_cycle_load2

        emb = embed_cycle_load2(args.n)
    else:
        from repro.core import embed_grid_multipath

        dims = tuple(int(x) for x in args.dims.lower().split("x"))
        emb = embed_grid_multipath(dims, torus=args.torus)
    with open(args.path, "w") as fp:
        fp.write(to_json(emb))
    print(f"wrote {args.path}")
    return 0


def _cmd_load(args) -> int:
    from repro.analysis import report
    from repro.core.serialize import from_json

    with open(args.path) as fp:
        emb = from_json(fp.read())  # verified on load
    print("verified OK")
    print(report(emb))
    return 0


def _cmd_validate(args) -> int:
    from repro.analysis import validate_claims

    results = validate_claims()
    width = max(len(r.claim) for r in results)
    ok = True
    for r in results:
        mark = "PASS" if r.ok else "FAIL"
        print(f"  {r.claim.ljust(width)}  {mark}  {r.detail}")
        ok &= r.ok
    print(f"{sum(r.ok for r in results)}/{len(results)} claims verified")
    return 0 if ok else 1


def _cmd_cache(args) -> int:
    import json as _json
    import time

    from repro.service import BuildEngine, EmbeddingRegistry

    registry = EmbeddingRegistry(cache_dir=args.cache_dir)
    if args.cache_command == "build":
        if args.ns:
            ns = [int(x) for x in args.ns.split(",")]
            specs = [_spec_from_args(args, n=n) for n in ns]
        else:
            specs = [_spec_from_args(args)]
        engine = BuildEngine(registry, max_workers=args.workers)
        start = time.perf_counter()
        embeddings = engine.build_batch(specs)
        elapsed = time.perf_counter() - start
        for spec, emb in zip(specs, embeddings):
            print(f"  {spec.describe():<36} -> {emb!r}")
        rate = len(specs) / elapsed if elapsed else float("inf")
        print(
            f"{len(specs)} artifact(s) ready in {elapsed:.3f}s "
            f"({rate:.1f} req/s) under {registry.cache_dir}"
        )
        return 0
    if args.cache_command == "ls":
        rows = registry.ls()
        if not rows:
            print(f"cache empty ({registry.cache_dir})")
            return 0
        for row in rows:
            print(
                f"  {row['key']:<14} {row['construction']:<36} "
                f"v{row['package_version']:<8} {row['tier']:<12} "
                f"{row['bytes']:>9} B"
            )
        print(f"{len(rows)} artifact(s) in {registry.cache_dir}")
        return 0
    if args.cache_command == "migrate":
        out = registry.migrate(verify_payload=args.verify)
        print(
            f"migrated {out['migrated']}, skipped {out['skipped']} "
            f"(already binary), failed {out['failed']} "
            f"under {registry.cache_dir}"
        )
        return 0 if out["failed"] == 0 else 1
    if args.cache_command == "clear":
        removed = registry.clear()
        print(f"removed {removed} artifact(s) from {registry.cache_dir}")
        return 0
    # stats
    print(_json.dumps(registry.stats(), indent=2, sort_keys=True))
    return 0


def _cmd_route(args) -> int:
    import ast
    import time

    from repro.fault.faults import FaultModel
    from repro.service import EmbeddingRegistry, RouteRequest, RoutingService

    service = RoutingService(registry=EmbeddingRegistry(cache_dir=args.cache_dir))
    spec = _spec_from_args(args)
    emb = service.get_embedding(spec)

    if args.batch is not None:
        from repro._compat import resolve_rng

        rng = resolve_rng(args.seed)
        shard = service.shard_for(spec)
        edges = []
        for _ in range(args.batch):
            u, v = rng.choice(shard.csr.edges)
            edges.append((v, u) if rng.random() < 0.5 else (u, v))
        start = time.perf_counter()
        result = service.route_batch(spec, edges)
        elapsed = time.perf_counter() - start
        rate = len(result) / elapsed if elapsed else float("inf")
        print(
            f"{spec.describe()}: {len(result)} request(s) -> "
            f"{result.total_paths} path(s) in {elapsed * 1e3:.2f} ms "
            f"({rate:,.0f} req/s)"
        )
        first = result[0]
        print(f"  e.g. {first.guest_edge} -> {first.width} path(s), "
              f"first: {' -> '.join(map(str, first.paths[0]))}")
        service.close()
        return 0

    if args.edge is not None:
        try:
            edge = tuple(ast.literal_eval(x) for x in args.edge)
        except (ValueError, SyntaxError):
            print(
                f"--edge expects python literals (e.g. 0 1 or '(0, 0)' "
                f"'(0, 1)'), got {args.edge!r}",
                file=sys.stderr,
            )
            return 2
    else:
        edge = next(iter(
            emb.copies[0].edge_paths if hasattr(emb, "copies") else emb.edge_paths
        ))
    response = service.route(spec, RouteRequest(edge))
    paths = response.paths
    print(f"{spec.describe()}: guest edge {edge} -> {len(paths)} host path(s)")
    for i, path in enumerate(paths):
        print(f"  [{i}] {' -> '.join(map(str, path))}")
    exit_code = 0
    if args.faults is not None:
        faults = FaultModel.random(emb.host, args.faults, seed=args.seed)
        outcome = service.route_fault_tolerant(
            spec,
            RouteRequest(edge, faults=faults, pieces_needed=args.pieces),
        )
        status = "delivered" if outcome.delivered else "LOST"
        print(
            f"fault injection p={args.faults}: {status} via "
            f"{len(outcome.alive_paths)}/{outcome.width} surviving paths "
            f"(need {outcome.pieces_needed}, overhead {outcome.overhead:.1f}x)"
        )
        exit_code = 0 if outcome.delivered else 1
    service.close()
    return exit_code


def _cmd_serve(args) -> int:
    from repro.service import EmbeddingRegistry, RoutingService, open_loop_load

    service = RoutingService(registry=EmbeddingRegistry(cache_dir=args.cache_dir))
    spec = _spec_from_args(args)
    shard = service.shard_for(spec)  # warm build + publish before the clock
    print(
        f"serving {spec.describe()} from shard {shard.info.name or '(local)'} "
        f"({shard.info.num_paths} path(s), {shard.info.nbytes / 1e6:.1f} MB)"
    )
    report = open_loop_load(
        service,
        spec,
        rate=args.rate,
        total=args.requests,
        seed=args.seed,
        max_batch=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
    )
    print(f"  {report.describe()}")
    snapshot = service.metrics.snapshot()
    sizes = snapshot["histograms"].get("serve_batch_size")
    if sizes:
        print(
            f"  batches: {sizes['count']} "
            f"(mean {sizes['mean']:.0f}, max {sizes['max']:.0f} requests)"
        )
    service.close()
    return 0 if report.errors == 0 else 1


def _all_paths(emb):
    """Every host path the embedding provides, flattened across styles."""
    if hasattr(emb, "copies"):  # multicopy: one path per guest edge per copy
        return [p for c in emb.copies for p in c.edge_paths.values()]
    paths = []
    for entry in emb.edge_paths.values():
        if entry and isinstance(entry[0], (tuple, list)):  # multipath bundle
            paths.extend(entry)
        else:
            paths.append(entry)
    return paths


def _obs_delivery(args):
    """Build the spec'd embedding and simulate an instrumented delivery."""
    from repro.obs import LinkRecorder
    from repro.routing.simulator import StoreForwardSimulator
    from repro.service.specs import build_spec

    spec = _spec_from_args(args)
    emb = build_spec(spec)
    emb.verify()
    schedule = [
        (path, t + 1)
        for path in _all_paths(emb)
        for t in range(args.packets)
    ]
    recorder = LinkRecorder(host=emb.host)
    result = StoreForwardSimulator(emb.host).run(schedule, recorder=recorder)
    return spec, emb, recorder, result


def _cmd_obs(args) -> int:
    if args.obs_command == "trace":
        from repro.obs import enable_profiling, profile_span, profiling_tracer
        from repro.service.specs import build_spec

        registry = enable_profiling()
        spec = _spec_from_args(args)
        with profile_span("obs.trace", kind=args.kind):
            emb = build_spec(spec)
            with profile_span("verify"):
                emb.verify()
        print(f"{spec.describe()} -> {emb!r}")
        tree = profiling_tracer().format_tree()
        print(tree if tree else "(no spans recorded)")
        timers = registry.snapshot()["timers"]
        if timers:
            print()
            width = max(len(n) for n in timers)
            for name, t in sorted(timers.items()):
                print(
                    f"  {name.ljust(width)}  x{t['count']}  "
                    f"total {t['total_s']:.4f}s  mean {t['mean_s']:.4f}s"
                )
        return 0

    spec, emb, rec, result = _obs_delivery(args)
    if args.obs_command == "report":
        structural = getattr(emb, "congestion", None)
        if structural is None:
            structural = getattr(emb, "edge_congestion", "?")
        print(
            f"{spec.describe()}: delivered {result.delivered} packet(s) "
            f"in {result.makespan} step(s) [{result.engine}]"
        )
        print(
            f"  link congestion  measured {rec.congestion}  "
            f"structural {structural}"
        )
        print(f"  links used       {len(rec.link_transmissions)}")
        print("  busiest links:")
        for eid, count in rec.busiest_links(5):
            u, v = emb.host.edge_from_id(eid)
            print(f"    {u:>5} -> {v:<5}  {count} packet(s)")
        print("  arrivals by step:")
        for step, count in rec.step_histogram().items():
            print(f"    step {step:>4}  {count}")
        return 0

    # export
    from repro.obs import collect_snapshot, snapshot_to_csv, snapshot_to_json

    snap = collect_snapshot(
        recorder=rec,
        meta={
            "spec": spec.describe(),
            "packets_per_path": args.packets,
            "engine": result.engine,
            "makespan": result.makespan,
            "delivered": result.delivered,
        },
    )
    text = (
        snapshot_to_json(snap)
        if args.format == "json"
        else snapshot_to_csv(snap)
    )
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _parse_budget(text: Optional[str]) -> Optional[float]:
    """``"120s"``/``"5m"``/bare seconds -> seconds (None passes through)."""
    if text is None:
        return None
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("m"):
        scale, text = 60.0, text[:-1]
    elif text.endswith("s"):
        text = text[:-1]
    return float(text) * scale


def _cmd_bench(args) -> int:
    from repro.analysis.trajectory import (
        compare_to_baseline,
        default_workloads,
        format_points,
        load_trajectory,
        run_trajectory,
        write_trajectory,
    )

    workloads = default_workloads()
    if args.list:
        for w in workloads:
            tag = " [quick]" if w.quick else ""
            print(f"  {w.name}{tag}: {w.description}")
        return 0
    names = (
        [n.strip() for n in args.workloads.split(",") if n.strip()]
        if args.workloads
        else None
    )

    def progress(w, points):
        fast = points[-1]
        speedup = fast.get("speedup")
        print(
            f"  {w.name}: fast {fast['wall_s']:.3f}s"
            + (f", speedup {speedup}x" if speedup is not None else "")
        )

    payload = run_trajectory(
        workloads,
        names=names,
        quick=args.quick,
        repeats=args.repeats,
        on_workload=progress,
    )
    write_trajectory(payload, args.output)
    print(f"\n{format_points(payload)}")
    print(f"\nwrote {len(payload['points'])} point(s) to {args.output}")
    disagreements = [
        p["workload"]
        for p in payload["points"]
        if p.get("agree") is False
    ]
    if disagreements:
        print(f"ENGINES DISAGREE on: {', '.join(disagreements)}")
        return 1
    if args.baseline:
        problems = compare_to_baseline(
            payload, load_trajectory(args.baseline), args.max_regression
        )
        if problems:
            print(f"\nREGRESSION vs {args.baseline}:")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"no regression vs {args.baseline} "
              f"(max tolerated {args.max_regression:.0%})")
    return 0


def _cmd_qa(args) -> int:
    from repro.qa import Corpus, Fuzzer

    if args.qa_command == "fuzz":
        corpus = Corpus(args.corpus)
        kinds = args.kinds.split(",") if args.kinds else None
        fuzzer = Fuzzer(corpus=corpus, seed=args.seed, images=args.images)
        report = fuzzer.run(
            seeds=args.seeds, budget_s=_parse_budget(args.budget), kinds=kinds
        )
        print(report.summary())
        for entry in report.failures:
            print(f"  [{entry.entry_id}] {entry.kind} {entry.params}")
            print(f"    {entry.stage}: {entry.detail}")
        if report.failures:
            print(f"reproducers saved under {corpus.directory}")
        return 0 if report.ok else 1

    if args.qa_command == "diff":
        from repro._compat import resolve_rng
        from repro.hypercube.graph import Hypercube
        from repro.qa import differential_check, random_schedule

        host = Hypercube(args.n)
        for i in range(args.seeds):
            rng = resolve_rng(f"{args.seed}:diff:{i}")
            schedule = random_schedule(host, rng, max_packets=args.packets)
            divergence = differential_check(host, schedule)
            if divergence is not None:
                print(f"seed {i}: {divergence.describe()}")
                for path, release in divergence.schedule:
                    print(f"    release {release}: {' -> '.join(map(str, path))}")
                return 1
        print(
            f"{args.seeds} random schedule(s) on Q_{args.n}: engines agree "
            f"field-for-field"
        )
        return 0

    if args.qa_command == "batched":
        from repro._compat import resolve_rng
        from repro.fault.faults import FaultModel
        from repro.hypercube.graph import Hypercube
        from repro.qa.differential import (
            batched_differential_check,
            batched_wormhole_differential_check,
        )
        from repro.qa.schedules import (
            random_schedule_batch,
            random_worm_schedule_batch,
        )

        host = Hypercube(args.n)
        for i in range(args.seeds):
            rng = resolve_rng(f"{args.seed}:batched:{i}")
            batch = random_schedule_batch(host, rng, max_lanes=args.lanes)
            faults = None
            if rng.random() < 0.5:
                faults = [
                    FaultModel.random_links(
                        host, k=1, rng=rng,
                        active_from=rng.choice([0, 1, 3]),
                    )
                    if rng.random() < 0.5
                    else None
                    for _ in batch
                ]
            divergence = batched_differential_check(host, batch, faults=faults)
            if divergence is None:
                worm_batch = random_worm_schedule_batch(
                    host, rng, max_lanes=min(3, args.lanes)
                )
                divergence = batched_wormhole_differential_check(
                    host, worm_batch
                )
            if divergence is not None:
                print(f"seed {i}: {divergence.describe()}")
                return 1
        print(
            f"{args.seeds} random batch(es) on Q_{args.n}: batched engines "
            f"match the scalar engines lane-for-lane"
        )
        return 0

    if args.qa_command == "replay":
        corpus = Corpus(args.corpus)
        entry = corpus.load(args.entry)
        failure = Fuzzer(corpus=corpus).replay(entry)
        print(f"[{entry.entry_id}] {entry.kind} {entry.params} ({entry.stage})")
        if failure is None:
            print("  no longer reproduces (fixed?)")
            return 0
        print(f"  reproduced: {failure.stage}: {failure.detail}")
        return 1

    # corpus
    corpus = Corpus(args.corpus)
    if args.clear:
        removed = corpus.clear()
        print(f"removed {removed} reproducer(s) from {corpus.directory}")
        return 0
    entries = corpus.entries()
    if not entries:
        print(f"corpus empty ({corpus.directory})")
        return 0
    for entry in entries:
        print(f"  [{entry.entry_id}] {entry.kind} {entry.params}")
        print(f"    {entry.stage}: {entry.detail}")
    print(f"{len(entries)} reproducer(s) in {corpus.directory}")
    return 0


def _changed_py_files(base: str) -> Optional[List[str]]:
    """Changed-vs-``base`` plus untracked .py files, absolute; None = no git."""
    import subprocess

    def git(*argv: str) -> List[str]:
        proc = subprocess.run(
            ["git", *argv], capture_output=True, text=True, check=True
        )
        return [line for line in proc.stdout.splitlines() if line.strip()]

    try:
        top = git("rev-parse", "--show-toplevel")[0]
        names = git("diff", "--name-only", "--diff-filter=d", base, "--")
        names += git("ls-files", "--others", "--exclude-standard")
    except (OSError, IndexError, subprocess.CalledProcessError):
        return None
    from pathlib import Path

    return sorted(
        {str(Path(top) / n) for n in names if n.endswith(".py")}
    )


def _cmd_lint(args) -> int:
    import json
    from pathlib import Path

    from repro.lint import LintConfig, all_rules, apply_fixes, run_lint

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name} [{rule.scope}]")
            if rule.doc:
                print(f"    {rule.doc.splitlines()[0]}")
        return 0

    paths = args.paths or [str(Path(__file__).resolve().parent)]
    select = tuple(args.select.split(",")) if args.select else None
    focus = None
    if args.changed is not None:
        focus = _changed_py_files(args.changed)
        if focus is None and args.format == "text":
            print("--changed: not a git checkout, linting everything")
    report = run_lint(paths, LintConfig(select=select), focus=focus)

    if args.fix:
        applied, report = apply_fixes(report)
        if applied and args.format == "text":
            print(f"applied {applied} fix(es)")

    if args.format == "json":
        rendered = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    elif args.format == "sarif":
        rendered = json.dumps(report.to_sarif(), indent=2, sort_keys=True)
    else:
        lines = [finding.format() for finding in report.findings]
        if focus is not None:
            lines.append(f"(changed-file scope: {len(focus)} file(s))")
        lines.append(report.summary())
        rendered = "\n".join(lines)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
    else:
        print(rendered)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "embed": _cmd_embed,
        "compare": _cmd_compare,
        "broadcast": _cmd_broadcast,
        "faults": _cmd_faults,
        "scenarios": _cmd_scenarios,
        "sweep": _cmd_sweep,
        "save": _cmd_save,
        "load": _cmd_load,
        "validate": _cmd_validate,
        "cache": _cmd_cache,
        "route": _cmd_route,
        "serve": _cmd_serve,
        "obs": _cmd_obs,
        "bench": _cmd_bench,
        "qa": _cmd_qa,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
