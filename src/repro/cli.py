"""Command-line interface: build, verify and report on embeddings.

Usage examples::

    python -m repro figures --n 8
    python -m repro embed cycle --n 8
    python -m repro embed cycle2 --n 10 --wide
    python -m repro embed grid --dims 16x16 --torus
    python -m repro embed ccc --n 4
    python -m repro embed tree --m 2
    python -m repro compare --n 6
    python -m repro broadcast --n 6 --packets 512
    python -m repro faults --n 8 --prob 0.05
    python -m repro sweep utilization --n 10
    python -m repro save cycle emb.json --n 8 && python -m repro load emb.json
    python -m repro validate
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Routing Multiple Paths in Hypercubes (Greenberg & "
        "Bhatt, SPAA 1990) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figures", help="print the paper's Figures 1-4")
    fig.add_argument("--n", type=int, default=8, help="hypercube dimension")

    emb = sub.add_parser("embed", help="build, verify and report an embedding")
    emb.add_argument(
        "kind", choices=["cycle", "cycle2", "grid", "ccc", "tree", "large-cycle"]
    )
    emb.add_argument("--n", type=int, default=8, help="hypercube dimension")
    emb.add_argument("--m", type=int, default=2, help="butterfly levels (tree)")
    emb.add_argument("--dims", type=str, default="16x16", help="grid sides, AxBxC")
    emb.add_argument("--torus", action="store_true", help="wraparound grid")
    emb.add_argument("--wide", action="store_true", help="Theorem 2 width variant")

    cmp_ = sub.add_parser("compare", help="compare the three embedding styles")
    cmp_.add_argument("--n", type=int, default=6, help="hypercube dimension (even)")

    bc = sub.add_parser("broadcast", help="one-to-all broadcast comparison")
    bc.add_argument("--n", type=int, default=6)
    bc.add_argument("--packets", type=int, default=512)

    flt = sub.add_parser("faults", help="fault-tolerant delivery experiment")
    flt.add_argument("--n", type=int, default=8)
    flt.add_argument("--prob", type=float, default=0.05)
    flt.add_argument("--seed", type=int, default=0)

    swp = sub.add_parser("sweep", help="run one of the measured series")
    swp.add_argument(
        "series",
        choices=["speedup", "utilization", "faults", "broadcast"],
    )
    swp.add_argument("--n", type=int, default=8)

    sav = sub.add_parser("save", help="build an embedding and write JSON")
    sav.add_argument("kind", choices=["cycle", "cycle2", "grid"])
    sav.add_argument("path", help="output file")
    sav.add_argument("--n", type=int, default=8)
    sav.add_argument("--dims", type=str, default="16x16")
    sav.add_argument("--torus", action="store_true")

    lod = sub.add_parser("load", help="load, re-verify and report a JSON embedding")
    lod.add_argument("path", help="input file")

    sub.add_parser("validate", help="re-certify every theorem claim")

    return parser


def _cmd_figures(args) -> int:
    from repro.analysis import figure1, figure2, figure3, figure4

    print(figure1(min(args.n, 4)))
    print()
    print(figure2(args.n if args.n % 4 else args.n + 3))
    print()
    print(figure3(4))
    print()
    print(figure4(max(args.n, 8)))
    return 0


def _cmd_embed(args) -> int:
    from repro.analysis import report

    if args.kind == "cycle":
        from repro.core import embed_cycle_load1

        emb = embed_cycle_load1(args.n)
    elif args.kind == "cycle2":
        from repro.core import embed_cycle_load2

        emb = embed_cycle_load2(args.n, prefer_width=args.wide)
    elif args.kind == "grid":
        from repro.core import embed_grid_multipath

        dims = tuple(int(x) for x in args.dims.lower().split("x"))
        emb = embed_grid_multipath(dims, torus=args.torus)
    elif args.kind == "ccc":
        from repro.core import ccc_multicopy_embedding

        emb = ccc_multicopy_embedding(args.n)
    elif args.kind == "tree":
        from repro.core import theorem5_embedding

        emb = theorem5_embedding(args.m)
    else:  # large-cycle
        from repro.core import large_cycle_embedding

        emb = large_cycle_embedding(args.n)
    emb.verify()
    print("verified OK")
    print(report(emb))
    info = getattr(emb, "info", None)
    if info and "claim" in info:
        print(f"  paper claim     {info['claim']}")
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis import compare_embeddings
    from repro.core import (
        cycle_multicopy_embedding,
        embed_cycle_load1,
        graycode_cycle_embedding,
        large_cycle_embedding,
    )

    n = args.n
    if n % 2:
        print("compare needs even n (Lemma 1's directed form)", file=sys.stderr)
        return 2
    print(
        compare_embeddings(
            {
                "graycode": graycode_cycle_embedding(n),
                "multipath": embed_cycle_load1(n) if n >= 4 else
                graycode_cycle_embedding(n),
                "multicopy": cycle_multicopy_embedding(n),
                "large-copy": large_cycle_embedding(n),
            }
        )
    )
    return 0


def _cmd_broadcast(args) -> int:
    from repro.apps.one_to_all import broadcast_comparison

    print(f"one-to-all broadcast on Q_{args.n}")
    print(f"{'M':>8} {'binomial tree':>14} {'n Ham. cycles':>14}")
    for m, tree, cyc in broadcast_comparison(
        args.n, (args.packets // 4 or 1, args.packets, args.packets * 4)
    ):
        print(f"{m:>8} {tree:>14} {cyc:>14}")
    return 0


def _cmd_faults(args) -> int:
    from repro.core import embed_cycle_load1
    from repro.fault import FaultyLinkModel, multipath_delivery_experiment

    emb = embed_cycle_load1(args.n)
    faults = FaultyLinkModel.random(emb.host, args.prob, seed=args.seed)
    rep = multipath_delivery_experiment(emb, faults)
    print(
        f"Q_{args.n}, link fault probability {args.prob}: "
        f"{rep.delivered}/{rep.total_edges} edges delivered "
        f"({rep.delivery_rate:.1%}) via IDA over the disjoint paths"
    )
    return 0


def _cmd_sweep(args) -> int:
    from repro.analysis import (
        broadcast_crossover_sweep,
        cycle_speedup_sweep,
        fault_tolerance_sweep,
        format_rows,
        utilization_sweep,
    )

    n = args.n
    if args.series == "speedup":
        rows = cycle_speedup_sweep(range(4, n + 1, 2))
    elif args.series == "utilization":
        rows = utilization_sweep(range(4, n + 2))
    elif args.series == "faults":
        rows = fault_tolerance_sweep(n, [0.01, 0.02, 0.05, 0.1])
    else:
        rows = broadcast_crossover_sweep(n, (8, 64, 512, 4096))
    print(format_rows(rows))
    return 0


def _cmd_save(args) -> int:
    from repro.core.serialize import to_json

    if args.kind == "cycle":
        from repro.core import embed_cycle_load1

        emb = embed_cycle_load1(args.n)
    elif args.kind == "cycle2":
        from repro.core import embed_cycle_load2

        emb = embed_cycle_load2(args.n)
    else:
        from repro.core import embed_grid_multipath

        dims = tuple(int(x) for x in args.dims.lower().split("x"))
        emb = embed_grid_multipath(dims, torus=args.torus)
    with open(args.path, "w") as fp:
        fp.write(to_json(emb))
    print(f"wrote {args.path}")
    return 0


def _cmd_load(args) -> int:
    from repro.analysis import report
    from repro.core.serialize import from_json

    with open(args.path) as fp:
        emb = from_json(fp.read())  # verified on load
    print("verified OK")
    print(report(emb))
    return 0


def _cmd_validate(args) -> int:
    from repro.analysis import validate_claims

    results = validate_claims()
    width = max(len(r.claim) for r in results)
    ok = True
    for r in results:
        mark = "PASS" if r.ok else "FAIL"
        print(f"  {r.claim.ljust(width)}  {mark}  {r.detail}")
        ok &= r.ok
    print(f"{sum(r.ok for r in results)}/{len(results)} claims verified")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figures": _cmd_figures,
        "embed": _cmd_embed,
        "compare": _cmd_compare,
        "broadcast": _cmd_broadcast,
        "faults": _cmd_faults,
        "sweep": _cmd_sweep,
        "save": _cmd_save,
        "load": _cmd_load,
        "validate": _cmd_validate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
