"""The seeded scenario-generator registry.

A *scenario* is a named, seeded traffic generator: given a host hypercube,
a shared RNG stream and a load knob λ (expected packets per node per step
over a ``horizon`` of injection steps), it produces a plain
``(path, release_step)`` schedule — the least structured shape
:func:`repro.routing.api.normalize_schedule` accepts, so every engine,
recorder and QA stage consumes it unchanged.

Generators register themselves with :func:`register_scenario` (the
generator-registry style noted in ROADMAP.md); callers go through
:func:`build_schedule`, which arbitrates ``(seed, rng)`` via
:func:`repro._compat.resolve_rng` so every scenario replays byte-identical
from a seed.  :func:`schedule_digest` is the canonical content hash the
determinism tests and the fuzz oracles compare.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro._compat import resolve_rng
from repro.hypercube.graph import Hypercube

__all__ = [
    "Schedule",
    "ScenarioGenerator",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "build_schedule",
    "schedule_digest",
]

# one packet: (host path, release step) — identical to repro.qa.schedules
Schedule = List[Tuple[Tuple[int, ...], int]]

GeneratorFn = Callable[..., Schedule]


@dataclass(frozen=True)
class ScenarioGenerator:
    """One registered scenario: name, description, generator, defaults."""

    name: str
    description: str
    generate: GeneratorFn
    defaults: Dict[str, Any] = field(default_factory=dict)


_REGISTRY: Dict[str, ScenarioGenerator] = {}


def register_scenario(
    name: str, description: str = "", **defaults: Any
) -> Callable[[GeneratorFn], GeneratorFn]:
    """Register ``fn(host, rng, *, load, horizon, **params) -> Schedule``.

    ``defaults`` become the scenario's default pattern parameters (callers
    may override them per build).  Re-registering a name with a different
    function raises; re-importing the defining module is idempotent.
    """

    def decorate(fn: GeneratorFn) -> GeneratorFn:
        existing = _REGISTRY.get(name)
        if existing is not None and existing.generate is not fn:
            raise ValueError(f"scenario {name!r} is already registered")
        doc = description or (fn.__doc__ or "").strip().splitlines()[0]
        _REGISTRY[name] = ScenarioGenerator(name, doc, fn, dict(defaults))
        return fn

    return decorate


def _load_builtin_scenarios() -> None:
    # registration happens at import; lazy to avoid a registry<->generators
    # import cycle
    from repro.scenarios import generators  # noqa: F401


def scenario_names() -> Tuple[str, ...]:
    """Every registered scenario name, sorted."""
    _load_builtin_scenarios()
    return tuple(sorted(_REGISTRY))


def get_scenario(name: str) -> ScenarioGenerator:
    """The registered generator for ``name`` (KeyError lists known names)."""
    _load_builtin_scenarios()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[name]


def build_schedule(
    name: str,
    host: Hypercube,
    *,
    load: float = 1.0,
    horizon: int = 8,
    seed: Optional[Any] = None,
    rng: Optional[random.Random] = None,
    **params: Any,
) -> Schedule:
    """Build ``name``'s schedule on ``host`` at offered load ``load``.

    ``load`` is the expected number of packets injected per node per step
    across ``horizon`` injection steps (λ of the open-loop model);
    deterministic given ``seed`` (default 0), or pass ``rng`` to draw from
    a shared stream.  Extra keyword arguments override the scenario's
    default pattern parameters.
    """
    if load < 0:
        raise ValueError(f"load must be >= 0, got {load}")
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    gen = get_scenario(name)
    rng = resolve_rng(seed, rng)
    kwargs = dict(gen.defaults)
    kwargs.update(params)
    return gen.generate(host, rng, load=load, horizon=horizon, **kwargs)


def schedule_digest(schedule: Schedule) -> str:
    """A short stable content hash of a schedule (order-sensitive)."""
    h = hashlib.sha256()
    for path, release in schedule:
        h.update(",".join(map(str, path)).encode())
        h.update(f"@{release};".encode())
    return h.hexdigest()[:16]
