"""The built-in adversarial traffic generators.

Each generator is an *open-loop* source: at every injection step in
``range(1, horizon + 1)`` every node draws a number of arrivals with mean
``load`` (integer part deterministic, fractional part Bernoulli — so the
offered load is exact in expectation and the knob is continuous), picks a
destination by its pattern, and ships one packet along the deterministic
dimension-order (e-cube) path.  That path choice is the point: these are
the classical worst cases *for* oblivious dimension-order routing
(bit-reversal and transpose concentrate ``2^(n/2)`` packets on middle
links; tornado defeats minimal adaptivity; hot-spot and many-to-one model
incast), which is the congestion the paper's multipath constructions are
designed to spread.

Self-addressed arrivals are skipped (nothing is transmitted), so measured
injection counts sit at or just below ``load * nodes * horizon``.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.hypercube.graph import Hypercube
from repro.routing.permutation import (
    bit_reversal_permutation,
    dimension_order_path,
    random_permutation,
)
from repro.scenarios.registry import Schedule, register_scenario

__all__ = ["arrivals"]


def arrivals(rng: random.Random, load: float) -> int:
    """Arrivals for one (node, step) cell: mean ``load``, integer-valued."""
    whole = int(load)
    frac = load - whole
    return whole + (1 if frac > 0 and rng.random() < frac else 0)


def _open_loop(
    host: Hypercube,
    rng: random.Random,
    load: float,
    horizon: int,
    dest: Callable[[int], int],
) -> Schedule:
    """The shared open-loop injection loop; ``dest(src)`` picks targets."""
    schedule: Schedule = []
    for step in range(1, horizon + 1):
        for src in range(host.num_nodes):
            for _ in range(arrivals(rng, load)):
                dst = dest(src)
                if dst == src:
                    continue
                path = tuple(dimension_order_path(host.n, src, dst))
                schedule.append((path, step))
    return schedule


@register_scenario("bit-reversal")
def bit_reversal(
    host: Hypercube, rng: random.Random, *, load: float, horizon: int
) -> Schedule:
    """Bit-reversal permutation: node v sends to reverse(v)."""
    table = bit_reversal_permutation(host.n)
    return _open_loop(host, rng, load, horizon, lambda src: table[src])


@register_scenario("transpose")
def transpose(
    host: Hypercube, rng: random.Random, *, load: float, horizon: int
) -> Schedule:
    """Matrix transpose: rotate the address by n/2 (swap halves)."""
    n, mask = host.n, host.num_nodes - 1
    rot = n // 2
    if rot == 0:
        return []
    return _open_loop(
        host, rng, load, horizon,
        lambda src: ((src << rot) | (src >> (n - rot))) & mask,
    )


@register_scenario("shuffle")
def shuffle(
    host: Hypercube, rng: random.Random, *, load: float, horizon: int
) -> Schedule:
    """Perfect shuffle: rotate the address left by one bit."""
    n, mask = host.n, host.num_nodes - 1
    if n < 2:
        return []
    return _open_loop(
        host, rng, load, horizon,
        lambda src: ((src << 1) | (src >> (n - 1))) & mask,
    )


@register_scenario("tornado")
def tornado(
    host: Hypercube, rng: random.Random, *, load: float, horizon: int
) -> Schedule:
    """Tornado offset: v sends to (v + 2^(n-1) - 1) mod 2^n.

    The ring-adversarial offset pattern adapted to the hypercube address
    space (degenerate for n = 1, where the offset is zero).
    """
    size = host.num_nodes
    offset = size // 2 - 1
    return _open_loop(
        host, rng, load, horizon, lambda src: (src + offset) % size
    )


@register_scenario("hot-spot", hot=0, hot_fraction=0.25)
def hot_spot(
    host: Hypercube, rng: random.Random, *, load: float, horizon: int,
    hot: int = 0, hot_fraction: float = 0.25,
) -> Schedule:
    """Hot-spot: each packet targets one hot node with extra probability."""
    if not 0 <= hot_fraction <= 1:
        raise ValueError("hot_fraction must be in [0, 1]")
    size = host.num_nodes

    def dest(src: int) -> int:
        if rng.random() < hot_fraction:
            return hot % size
        return rng.randrange(size)

    return _open_loop(host, rng, load, horizon, dest)


@register_scenario("many-to-one", sink=0)
def many_to_one(
    host: Hypercube, rng: random.Random, *, load: float, horizon: int,
    sink: int = 0,
) -> Schedule:
    """Incast: every node sends to a single sink."""
    sink %= host.num_nodes
    return _open_loop(host, rng, load, horizon, lambda src: sink)


@register_scenario("poisson")
def poisson(
    host: Hypercube, rng: random.Random, *, load: float, horizon: int
) -> Schedule:
    """Uniform-random open-loop arrivals — the baseline saturation traffic."""
    size = host.num_nodes
    return _open_loop(
        host, rng, load, horizon, lambda src: rng.randrange(size)
    )


@register_scenario("permutation")
def permutation(
    host: Hypercube, rng: random.Random, *, load: float, horizon: int
) -> Schedule:
    """A fresh random permutation, fixed for the whole run: v -> perm[v].

    The workload the historical ``repro faults`` experiment used, now a
    first-class scenario (and the campaign engine's default).
    """
    perm = random_permutation(host.num_nodes, rng=rng)
    return _open_loop(host, rng, load, horizon, lambda src: perm[src])
