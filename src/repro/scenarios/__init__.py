"""Adversarial traffic scenarios and fault campaigns.

The subsystem has three pieces:

* :mod:`repro.scenarios.registry` + :mod:`repro.scenarios.generators` —
  a seeded registry of open-loop traffic generators (bit-reversal,
  transpose, shuffle, tornado, hot-spot, many-to-one, poisson,
  permutation) with a continuous load knob λ, all producing plain
  ``(path, release_step)`` schedules;
* :mod:`repro.scenarios.campaign` — the fault-campaign engine: kill k
  links/nodes at a mid-run step and replay the scenario with and without
  IDA failover over edge-disjoint paths (the paper's §1 reliability
  claim as a measured delivered fraction);
* :mod:`repro.scenarios.sweeps` — saturation-throughput sweeps (offered
  vs accepted load, latency percentiles) per scenario.

Every generator is also a fuzz subject (:mod:`repro.qa` pulls the
registry into its construction table) via
:class:`~repro.scenarios.subject.ScenarioSubject`.
"""

from repro.scenarios import generators as _generators  # noqa: F401  (registers builtins)
from repro.scenarios.campaign import (
    ArmReport,
    CampaignConfig,
    CampaignReport,
    run_campaign,
)
from repro.scenarios.registry import (
    Schedule,
    ScenarioGenerator,
    build_schedule,
    get_scenario,
    register_scenario,
    scenario_names,
    schedule_digest,
)
from repro.scenarios.subject import ScenarioSubject, scenario_subject
from repro.scenarios.sweeps import format_sweep_rows, saturation_sweep

__all__ = [
    "Schedule",
    "ScenarioGenerator",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "build_schedule",
    "schedule_digest",
    "ScenarioSubject",
    "scenario_subject",
    "CampaignConfig",
    "ArmReport",
    "CampaignReport",
    "run_campaign",
    "saturation_sweep",
    "format_sweep_rows",
]
