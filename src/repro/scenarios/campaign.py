"""The fault-campaign engine: kill k components mid-run, with/without IDA.

One campaign replays a scenario's traffic twice under the same fault set:

* **single-path arm** — every message ships one packet down its
  deterministic dimension-order path (the oblivious baseline);
* **IDA arm** — every message is dispersed with Rabin's IDA into ``w``
  pieces, one per edge-disjoint path
  (:func:`repro.routing.pathutils.edge_disjoint_paths` — the paper's
  Section 1 fault-tolerance application), needing any ``m`` pieces to
  reconstruct.

Faults activate at a configurable mid-run step (default: half the
fault-free single-path makespan), so packets that cleared the killed
region deliver and the rest are dropped by the store-and-forward engines'
fail-stop semantics.  The report compares delivered fraction and makespan
degradation between the two arms — the paper's reliability claim as a
measured quantity — and re-runs real GF(256) reconstructions on a sample
of delivered messages as an end-to-end checksum.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.fault.faults import FaultModel
from repro.fault.ida import disperse, reconstruct
from repro.hypercube.graph import Hypercube
from repro.routing.batched import BatchedStoreForward
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.pathutils import edge_disjoint_paths
from repro.routing.permutation import dimension_order_path
from repro.routing.simulator import StoreForwardSimulator
from repro.scenarios.registry import Schedule, build_schedule

__all__ = ["CampaignConfig", "ArmReport", "CampaignReport", "run_campaign"]


@dataclass(frozen=True)
# lint: protocol-exempt(engine here is a config field naming which simulator to use)
class CampaignConfig:
    """Everything one campaign run depends on (all of it seeded)."""

    n: int
    scenario: str = "permutation"
    load: float = 1.0
    horizon: int = 8
    kill_links: int = 0
    kill_nodes: int = 0
    # None = activate at half the fault-free makespan; 0 = static faults
    kill_step: Optional[int] = None
    # alternative to kill counts: per-link failure probability (legacy CLI)
    fault_prob: Optional[float] = None
    width: Optional[int] = None  # disjoint paths per message (default n)
    pieces: Optional[int] = None  # IDA threshold m (default ceil(w/2))
    seed: Any = 0
    engine: str = "fast"  # "fast" | "reference" | "batched"
    payload: bytes = b"routing multiple paths in hypercubes"
    payload_checks: int = 64  # real IDA reconstructions per run (cap)
    scenario_params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.engine not in ("fast", "reference", "batched"):
            raise ValueError(
                "engine must be 'fast', 'reference' or 'batched', "
                f"got {self.engine!r}"
            )
        if self.kill_links < 0 or self.kill_nodes < 0:
            raise ValueError("kill counts must be >= 0")


@dataclass(frozen=True)
class ArmReport:
    """One arm (single-path or IDA) of a campaign."""

    label: str
    messages: int
    delivered_messages: int
    packets: int
    delivered_packets: int
    clean_makespan: int
    faulty_makespan: int

    @property
    def delivered_fraction(self) -> float:
        return (
            self.delivered_messages / self.messages if self.messages else 1.0
        )

    @property
    def makespan_degradation(self) -> float:
        """Faulty / clean makespan (drops can push this below 1.0)."""
        return (
            self.faulty_makespan / self.clean_makespan
            if self.clean_makespan
            else 1.0
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "messages": self.messages,
            "delivered_messages": self.delivered_messages,
            "delivered_fraction": round(self.delivered_fraction, 4),
            "packets": self.packets,
            "delivered_packets": self.delivered_packets,
            "clean_makespan": self.clean_makespan,
            "faulty_makespan": self.faulty_makespan,
            "makespan_degradation": round(self.makespan_degradation, 3),
        }


@dataclass(frozen=True)
class CampaignReport:
    """Structured outcome of one fault campaign."""

    scenario: str
    n: int
    messages: int
    killed_links: int  # undirected links actually killed
    killed_nodes: int
    kill_step: int
    width: int
    pieces_needed: int
    seed: Any
    engine: str
    single: ArmReport
    ida: ArmReport
    reconstructions: int  # delivered messages whose payload round-tripped
    reconstruction_checks: int
    degraded_endpoints: int = 0  # messages whose endpoint node was killed
    config: CampaignConfig = field(  # type: ignore[assignment]
        repr=False, compare=False, default=None
    )

    @property
    def failover_gain(self) -> float:
        """IDA delivered fraction minus single-path delivered fraction."""
        return self.ida.delivered_fraction - self.single.delivered_fraction

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "n": self.n,
            "messages": self.messages,
            "killed_links": self.killed_links,
            "killed_nodes": self.killed_nodes,
            "kill_step": self.kill_step,
            "width": self.width,
            "pieces_needed": self.pieces_needed,
            "seed": self.seed,
            "engine": self.engine,
            "single": self.single.to_dict(),
            "ida": self.ida.to_dict(),
            "failover_gain": round(self.failover_gain, 4),
            "reconstructions": self.reconstructions,
            "reconstruction_checks": self.reconstruction_checks,
            "degraded_endpoints": self.degraded_endpoints,
        }

    def format(self) -> str:
        lines = [
            f"campaign: {self.scenario} on Q_{self.n}, "
            f"{self.messages} message(s), kill {self.killed_links} link(s) "
            f"+ {self.killed_nodes} node(s) at step {self.kill_step} "
            f"[{self.engine}]",
            f"  IDA failover: width {self.width}, need "
            f"{self.pieces_needed} piece(s) "
            f"(overhead {self.width / max(1, self.pieces_needed):.1f}x), "
            f"{self.reconstructions}/{self.reconstruction_checks} payload "
            f"reconstruction(s) verified",
        ]
        for arm in (self.single, self.ida):
            lines.append(
                f"  {arm.label:<12} delivered {arm.delivered_messages}/"
                f"{arm.messages} ({arm.delivered_fraction:.2%})  makespan "
                f"{arm.clean_makespan} -> {arm.faulty_makespan} "
                f"({arm.makespan_degradation:.2f}x)"
            )
        return "\n".join(lines)


def _simulator(config: CampaignConfig, host: Hypercube):
    if config.engine == "reference":
        return StoreForwardSimulator(host, tie_break="priority")
    return FastStoreForward(host)


def _run_arms(config: CampaignConfig, host: Hypercube, schedules, faults=None):
    """Run both arms' schedules — one batched call, or a per-arm loop.

    With ``engine="batched"`` the single-path and IDA arms advance as two
    lanes of one :class:`~repro.routing.batched.BatchedStoreForward` step
    loop (a shared fault model broadcasts to both lanes); results are
    field-identical to the per-arm loop.
    """
    if config.engine == "batched":
        return BatchedStoreForward(host).run_many(schedules, faults=faults)
    return [
        _simulator(config, host).run(schedule, faults=faults)
        for schedule in schedules
    ]


def _build_faults(config: CampaignConfig, host: Hypercube) -> FaultModel:
    if config.fault_prob is not None:
        return FaultModel.random(
            host, config.fault_prob, seed=f"{config.seed}:faults:prob"
        )
    faults = FaultModel.random_links(
        host, config.kill_links, seed=f"{config.seed}:faults:links"
    )
    if config.kill_nodes:
        faults = faults.merged(
            FaultModel.random_nodes(
                host, config.kill_nodes, seed=f"{config.seed}:faults:nodes"
            )
        )
    return faults


def run_campaign(config: CampaignConfig) -> CampaignReport:
    """Run one fault campaign and report both arms."""
    host = Hypercube(config.n)
    traffic = build_schedule(
        config.scenario,
        host,
        load=config.load,
        horizon=config.horizon,
        seed=f"{config.seed}:{config.scenario}:traffic",
        **dict(config.scenario_params),
    )
    # one message per generated packet: (src, dst, release)
    messages = [
        (path[0], path[-1], release)
        for path, release in traffic
        if path[0] != path[-1]
    ]

    single_schedule: Schedule = [
        (tuple(dimension_order_path(config.n, src, dst)), release)
        for src, dst, release in messages
    ]
    width = min(config.width or config.n, config.n)
    pieces_needed = config.pieces or -(-width // 2)
    pieces_needed = max(1, min(pieces_needed, width))
    ida_schedule: Schedule = []
    ida_owner: List[int] = []  # packet index -> message index
    for mi, (src, dst, release) in enumerate(messages):
        for path in edge_disjoint_paths(config.n, src, dst, width):
            ida_schedule.append((path, release))
            ida_owner.append(mi)

    single_clean, ida_clean = _run_arms(
        config, host, [single_schedule, ida_schedule]
    )
    kill_step = (
        config.kill_step
        if config.kill_step is not None
        else max(1, single_clean.makespan // 2)
    )

    faults = _build_faults(config, host)
    faults.active_from = kill_step
    single_faulty, ida_faulty = _run_arms(
        config, host, [single_schedule, ida_schedule], faults=faults
    )

    # per-message surviving piece indices in the IDA arm
    alive_pieces: Dict[int, List[int]] = {mi: [] for mi in range(len(messages))}
    piece_index: Dict[int, int] = {}
    counter: Dict[int, int] = {}
    for pi, mi in enumerate(ida_owner):
        piece_index[pi] = counter.get(mi, 0)
        counter[mi] = counter.get(mi, 0) + 1
    for pi, done in enumerate(ida_faulty.done_steps):
        if done >= 0:
            alive_pieces[ida_owner[pi]].append(piece_index[pi])

    ida_delivered = sum(
        1 for mi in alive_pieces if len(alive_pieces[mi]) >= pieces_needed
    )
    degraded_endpoints = sum(
        1
        for src, dst, _ in messages
        if src in faults.failed_nodes or dst in faults.failed_nodes
    )

    # end-to-end checksum: real GF(256) dispersal + reconstruction on a
    # deterministic sample of delivered messages
    pieces = disperse(config.payload, width, pieces_needed)
    checks = reconstructions = 0
    for mi in sorted(alive_pieces):
        if checks >= config.payload_checks:
            break
        survivors = alive_pieces[mi]
        if len(survivors) < pieces_needed:
            continue
        checks += 1
        got = reconstruct(
            [pieces[i] for i in survivors[:pieces_needed]],
            width,
            pieces_needed,
        )
        if got == config.payload:
            reconstructions += 1

    single = ArmReport(
        label="single-path",
        messages=len(messages),
        delivered_messages=single_faulty.delivered,
        packets=len(single_schedule),
        delivered_packets=single_faulty.delivered,
        clean_makespan=single_clean.makespan,
        faulty_makespan=single_faulty.makespan,
    )
    ida = ArmReport(
        label="ida-failover",
        messages=len(messages),
        delivered_messages=ida_delivered,
        packets=len(ida_schedule),
        delivered_packets=ida_faulty.delivered,
        clean_makespan=ida_clean.makespan,
        faulty_makespan=ida_faulty.makespan,
    )
    return CampaignReport(
        scenario=config.scenario,
        n=config.n,
        messages=len(messages),
        killed_links=len(faults.failed) // 2,
        killed_nodes=len(faults.failed_nodes),
        kill_step=kill_step,
        width=width,
        pieces_needed=pieces_needed,
        seed=config.seed,
        engine=config.engine,
        single=single,
        ida=ida,
        reconstructions=reconstructions,
        reconstruction_checks=checks,
        degraded_endpoints=degraded_endpoints,
        config=config,
    )
