"""A generated scenario as a first-class QA subject.

:class:`ScenarioSubject` wraps a built schedule in the shape the QA
harness expects of an embedding-like subject: ``host``, an
``edge_paths``-style path table (one single path per packet index, so
:func:`repro.qa.schedules.all_host_paths` and the metamorphic/differential
stages consume it unchanged), a non-strict :meth:`verify` report whose
checks and metrics are automorphism-invariant, and a :meth:`relabel` hook
:func:`repro.hypercube.automorphisms.relabel_embedding` dispatches to.

Determinism (same seed, same schedule digest) is deliberately *not* part
of :meth:`verify`: a relabeled image cannot be regenerated from its seed,
and the metamorphic stage compares verify reports between base and image.
It is checked by the per-scenario fuzz oracles instead
(:mod:`repro.qa.oracles`), which only run on the base point.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.core.verification import InvariantCheck, VerificationReport
from repro.hypercube.graph import Hypercube
from repro.scenarios.registry import Schedule, build_schedule, schedule_digest

__all__ = ["ScenarioSubject", "scenario_subject"]


class ScenarioSubject:
    """One built traffic scenario: host, schedule, and QA hooks."""

    def __init__(
        self,
        name: str,
        host: Hypercube,
        schedule: Schedule,
        params: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.host = host
        self.schedule: Schedule = [
            (tuple(path), int(release)) for path, release in schedule
        ]
        self.params = dict(params or {})
        # one single host path per packet index — the classical-embedding
        # shape the QA schedule samplers and the CLI flatteners understand
        self.edge_paths = {
            i: path for i, (path, _release) in enumerate(self.schedule)
        }

    def __repr__(self) -> str:
        return (
            f"ScenarioSubject({self.name!r}, Q_{self.host.n}, "
            f"{len(self.schedule)} packet(s))"
        )

    def digest(self) -> str:
        """The schedule's canonical content hash."""
        return schedule_digest(self.schedule)

    def verify(self, strict: bool = True) -> VerificationReport:
        """Structural validity: hypercube paths, sane release steps.

        Every check and metric here is invariant under host automorphisms
        (the metamorphic stage relies on that).
        """
        size = self.host.num_nodes
        bad_path = ""
        for i, (path, _release) in enumerate(self.schedule):
            if not path or any(not 0 <= v < size for v in path):
                bad_path = f"packet {i}: node out of range in {path}"
                break
            for a, b in zip(path, path[1:]):
                x = a ^ b
                if x == 0 or x & (x - 1):
                    bad_path = f"packet {i}: {a} -> {b} is not a Q_n edge"
                    break
            if bad_path:
                break
        checks = [
            InvariantCheck(
                "scenario:paths",
                not bad_path,
                bad_path or f"{len(self.schedule)} valid hypercube path(s)",
            ),
            InvariantCheck(
                "scenario:releases",
                all(r >= 1 for _, r in self.schedule),
                "every release step >= 1",
            ),
        ]
        metrics: Dict[str, Any] = {}
        if all(c.passed for c in checks):
            hops = sum(len(p) - 1 for p, _ in self.schedule)
            metrics = {
                "packets": len(self.schedule),
                "hops": hops,
                "max_path": max(
                    (len(p) - 1 for p, _ in self.schedule), default=0
                ),
                "last_release": max(
                    (r for _, r in self.schedule), default=0
                ),
            }
        report = VerificationReport(
            subject=f"scenario:{self.name}",
            checks=tuple(checks),
            metrics=metrics,
        )
        if strict:
            report.raise_if_failed()
        return report

    def relabel(self, auto: Any, verify: bool = True) -> "ScenarioSubject":
        """The scenario pushed through a host automorphism, hop by hop."""
        image = ScenarioSubject(
            self.name,
            self.host,
            [
                (tuple(auto(v) for v in path), release)
                for path, release in self.schedule
            ],
            params=self.params,
        )
        if verify:
            image.verify()
        return image


def scenario_subject(
    name: str,
    n: int,
    *,
    load: float = 1.0,
    horizon: int = 8,
    seed: Optional[Any] = None,
    rng: Optional[random.Random] = None,
    **params: Any,
) -> ScenarioSubject:
    """Build scenario ``name`` on ``Q_n`` as a :class:`ScenarioSubject`."""
    host = Hypercube(n)
    schedule = build_schedule(
        name, host, load=load, horizon=horizon, seed=seed, rng=rng, **params
    )
    return ScenarioSubject(
        name,
        host,
        schedule,
        params={"n": n, "load": load, "horizon": horizon, **params},
    )
