"""Saturation-throughput sweeps over the scenario generators.

For each offered load λ the sweep builds the scenario's schedule, runs it
through a store-and-forward engine with a :class:`repro.obs.LinkRecorder`
attached, and reports offered vs accepted load plus the p50/p99 packet
latency and the measured link congestion.  Offered load is packets
injected per node per step of the injection horizon; accepted load is
packets *delivered* per node per step of the actual run (which stretches
past the horizon once queues saturate), so the accepted-load curve
flattens at the saturation throughput while p99 latency turns upward —
the classical open-loop saturation picture, per scenario.

With ``engine="batched"`` every load point becomes one lane of a single
:class:`repro.routing.batched.BatchedStoreForward` run — the whole sweep
advances in one tensor step loop with per-lane recorders, producing the
same rows as the per-point loop (the batched differential in
:mod:`repro.qa` holds the engines to field identity).

Results are plain row dicts (the :mod:`repro.analysis.sweep` convention)
and can additionally be labeled into a
:class:`repro.obs.MetricsRegistry` by scenario name.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.hypercube.graph import Hypercube
from repro.obs.recorder import LinkRecorder
from repro.routing.batched import BatchedStoreForward
from repro.routing.fast_simulator import FastStoreForward
from repro.routing.simulator import StoreForwardSimulator
from repro.scenarios.registry import build_schedule

__all__ = ["saturation_sweep", "format_sweep_rows", "SWEEP_ENGINES"]

SWEEP_ENGINES = ("fast", "reference", "batched")


def _percentile(values: Sequence[int], q: float) -> float:
    """Nearest-rank percentile of a sorted sequence (0 when empty)."""
    if not values:
        return 0.0
    k = max(0, min(len(values) - 1, int(round(q * (len(values) - 1)))))
    return float(values[k])


def saturation_sweep(
    scenario: str,
    n: int,
    loads: Sequence[float],
    *,
    horizon: int = 32,
    seed: Any = 0,
    engine: str = "fast",
    metrics: Optional[Any] = None,
    **params: Any,
) -> List[Dict[str, Any]]:
    """Offered vs accepted load and latency percentiles across ``loads``.

    One row per load: ``scenario``, ``load`` (offered λ), ``offered`` /
    ``accepted`` (packets per node per step, measured), ``packets``,
    ``delivered``, ``makespan``, ``latency_p50`` / ``latency_p99`` (steps
    from release to arrival), and ``congestion`` (max packets across any
    directed link).  Deterministic given ``seed``; each load point draws
    from its own namespaced stream.  ``metrics`` (a
    :class:`repro.obs.MetricsRegistry`) gains scenario-labeled series.

    ``engine`` selects ``"fast"`` (per-point vectorized), ``"reference"``
    (per-point scalar), or ``"batched"`` (every load point as one lane of
    a single batched run — identical rows, one tensor step loop).
    """
    if engine not in SWEEP_ENGINES:
        raise ValueError(
            f"engine must be one of {SWEEP_ENGINES}, got {engine!r}"
        )
    host = Hypercube(n)
    schedules = [
        build_schedule(
            scenario,
            host,
            load=load,
            horizon=horizon,
            seed=f"{seed}:{scenario}:{load}",
            **params,
        )
        for load in loads
    ]
    if engine == "batched":
        recorders = [LinkRecorder(host) for _ in schedules]
        results = BatchedStoreForward(host).run_many(
            schedules, recorders=recorders
        )
    else:
        recorders, results = [], []
        for schedule in schedules:
            sim = (
                StoreForwardSimulator(host, tie_break="priority")
                if engine == "reference"
                else FastStoreForward(host)
            )
            recorder = LinkRecorder(host)
            results.append(sim.run(schedule, recorder=recorder))
            recorders.append(recorder)

    rows: List[Dict[str, Any]] = []
    for load, schedule, result, recorder in zip(
        loads, schedules, results, recorders
    ):
        latencies = sorted(
            done - release
            for (path, release), done in zip(schedule, result.done_steps)
            if done >= 0 and len(path) > 1
        )
        cells = host.num_nodes * horizon
        run_cells = host.num_nodes * max(result.makespan, horizon)
        row = {
            "scenario": scenario,
            "load": load,
            "offered": round(len(schedule) / cells, 4) if cells else 0.0,
            "accepted": (
                round(result.delivered / run_cells, 4) if run_cells else 0.0
            ),
            "packets": len(schedule),
            "delivered": result.delivered,
            "makespan": result.makespan,
            "latency_p50": _percentile(latencies, 0.50),
            "latency_p99": _percentile(latencies, 0.99),
            "congestion": recorder.congestion,
        }
        rows.append(row)
        if metrics is not None:
            metrics.counter(
                "scenarios.packets", scenario=scenario, load=load
            ).inc(len(schedule))
            metrics.counter(
                "scenarios.delivered", scenario=scenario, load=load
            ).inc(result.delivered)
            metrics.gauge(
                "scenarios.accepted_load", scenario=scenario, load=load
            ).set(row["accepted"])
            hist = metrics.histogram(
                "scenarios.latency", scenario=scenario, load=load
            )
            for lat in latencies:
                hist.observe(lat)
    return rows


def format_sweep_rows(rows: Sequence[Dict[str, Any]]) -> str:
    """Fixed-width table of sweep rows (the CLI / benchmark view)."""
    if not rows:
        return "(no rows)"
    cols = [
        "scenario", "load", "offered", "accepted", "packets",
        "makespan", "latency_p50", "latency_p99", "congestion",
    ]
    widths = {
        c: max(len(c), *(len(str(r.get(c, ""))) for r in rows)) for c in cols
    }
    header = "  ".join(c.ljust(widths[c]) for c in cols)
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            "  ".join(str(r.get(c, "")).ljust(widths[c]) for c in cols)
        )
    return "\n".join(lines)
