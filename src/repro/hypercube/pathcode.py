"""Vectorized host-path encoding kernels shared by the hot-path engines.

Every numpy engine in the package — the vectorized store-and-forward
simulator, the vectorized wormhole engine, and the vectorized verification
kernels — needs the same first move: turn a batch of host paths (tuples of
node ids) into dense integer arrays keyed by the packed directed-edge id
``u * n + dimension`` (see :class:`repro.hypercube.graph.Hypercube`).  This
module is that shared encoding, kept at the bottom of the dependency graph
so both ``repro.core`` and ``repro.routing`` can import it.

Two layouts are provided:

* :func:`path_edge_matrix` — the padded ``(num_paths, max_hops)`` edge-id
  matrix with ``-1`` fill that :class:`~repro.routing.fast_simulator.FastStoreForward`
  introduced (one row per packet, one column per hop);
* :func:`flatten_paths` + :func:`hop_edge_ids` — the flat CSR-style layout
  (one concatenated node vector plus path offsets) the verification kernels
  use, where per-path quantities come from offset arithmetic instead of
  Python loops.

All hop validation happens here, *before* any ``log2``: a zero-move hop
(``u == u``) or a multi-bit move is rejected with the same
``ValueError("(u, v) is not a hypercube edge")`` the scalar
:meth:`Hypercube.dimension_of` raises — never a ``divide by zero``
RuntimeWarning followed by an undefined float cast.
"""

from __future__ import annotations

from itertools import chain
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CSR_ALIGN",
    "CSR_ARRAYS",
    "CSR_FLAG_DTYPE",
    "CSR_NODE_DTYPE",
    "CSR_OFFSET_DTYPE",
    "csr_aligned",
    "gather_paths",
    "hop_dimensions",
    "hop_endpoints",
    "hop_edge_ids",
    "flatten_paths",
    "path_edge_matrix",
]

# The dtype contract of every flat CSR path batch in the package.  The
# shared-memory shard layer and the on-disk artifact store serialize these
# names into their headers and refuse to map bytes whose arrays disagree —
# keeping one producer (this module) and many consumers (verification
# kernels, batch routing, worker processes, memmapped artifacts)
# byte-compatible.
CSR_NODE_DTYPE = np.dtype(np.int64)  #: concatenated path nodes
CSR_OFFSET_DTYPE = np.dtype(np.int64)  #: path / bundle offset vectors
CSR_FLAG_DTYPE = np.dtype(np.uint8)  #: per-path orientation flags

# (field name, contract dtype) in on-bytes order — the serialized form of
# the contract, shared by the shared-memory shards and the artifact store.
CSR_ARRAYS: Tuple[Tuple[str, np.dtype], ...] = (
    ("nodes", CSR_NODE_DTYPE),
    ("path_offsets", CSR_OFFSET_DTYPE),
    ("bundle_offsets", CSR_OFFSET_DTYPE),
    ("path_reversed", CSR_FLAG_DTYPE),
)

# Every serialized CSR array starts on an 8-byte boundary so int64 views
# map without copies or misalignment, in shm segments and files alike.
CSR_ALIGN = 8


def csr_aligned(n: int) -> int:
    """``n`` rounded up to the serialized-CSR alignment boundary."""
    return (n + CSR_ALIGN - 1) // CSR_ALIGN * CSR_ALIGN


def _first_bad_hop(us: np.ndarray, vs: np.ndarray, bad: np.ndarray) -> Tuple[int, int]:
    """The (u, v) of the first invalid hop, for the error message."""
    i = int(np.argmax(bad))
    return int(us[i]), int(vs[i])


def hop_dimensions(
    us: np.ndarray, vs: np.ndarray, n: Optional[int] = None
) -> np.ndarray:
    """Dimension crossed by each hop ``us[i] -> vs[i]``, validated.

    Raises ``ValueError`` (matching :meth:`Hypercube.dimension_of`'s
    messages and check order) when any XOR is zero or not a power of two —
    the popcount check runs on the integers directly, so a zero-move hop
    never reaches ``log2`` — and, when ``n`` is given, when any endpoint
    is outside ``Q_n``.
    """
    x = us ^ vs
    bad = (x <= 0) | ((x & (x - 1)) != 0)
    if np.any(bad):
        u, v = _first_bad_hop(us, vs, bad)
        raise ValueError(f"({u}, {v}) is not a hypercube edge")
    if n is not None:
        num_nodes = 1 << n
        for arr in (us, vs):
            oob = (arr < 0) | (arr >= num_nodes)
            if np.any(oob):
                node = int(arr[np.argmax(oob)])
                raise ValueError(f"node {node} out of range for Q_{n}")
    # x is a positive power of two here, so log2 is exact and warning-free
    return np.log2(x.astype(np.float64)).astype(np.int64)


def flatten_paths(
    paths: Sequence[Sequence[int]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate ``paths`` into one node vector plus path offsets.

    Returns ``(nodes, offsets)`` with ``offsets`` of length
    ``len(paths) + 1``; path ``i`` occupies ``nodes[offsets[i]:offsets[i+1]]``.
    ``np.fromiter`` over a chained iterator keeps the per-node cost at C
    speed — the only Python-level work is one length call per path.
    """
    lengths = np.fromiter(
        (len(p) for p in paths), dtype=np.int64, count=len(paths)
    )
    offsets = np.zeros(len(paths) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    nodes = np.fromiter(
        chain.from_iterable(paths), dtype=np.int64, count=int(offsets[-1])
    )
    return nodes, offsets


def gather_paths(
    nodes: np.ndarray,
    offsets: np.ndarray,
    path_ids: np.ndarray,
    reverse: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather selected paths of a flattened batch into a new CSR batch.

    ``path_ids`` selects rows of the ``(nodes, offsets)`` layout (repeats
    allowed); ``reverse``, when given, is a boolean vector aligned with
    ``path_ids`` and flips the node order of the selected path — the
    whole gather, including reversal, is offset arithmetic plus one fancy
    index, with no per-path Python work.  Returns ``(out_nodes,
    out_offsets)`` in the :func:`flatten_paths` layout.
    """
    path_ids = np.asarray(path_ids, dtype=CSR_OFFSET_DTYPE)
    if path_ids.size and (
        int(path_ids.min()) < 0 or int(path_ids.max()) >= offsets.size - 1
    ):
        raise IndexError("path id out of range for this batch")
    starts = offsets[path_ids]
    stops = offsets[path_ids + 1]
    lengths = stops - starts
    out_offsets = np.zeros(path_ids.size + 1, dtype=CSR_OFFSET_DTYPE)
    np.cumsum(lengths, out=out_offsets[1:])
    total = int(out_offsets[-1])
    if total == 0:
        return np.zeros(0, dtype=CSR_NODE_DTYPE), out_offsets
    # position of each output node within its own path
    within = np.arange(total, dtype=np.int64) - np.repeat(out_offsets[:-1], lengths)
    if reverse is None:
        idx = np.repeat(starts, lengths) + within
    else:
        rev = np.asarray(reverse, dtype=bool)
        base = np.where(rev, stops - 1, starts)
        sign = np.where(rev, np.int64(-1), np.int64(1))
        idx = np.repeat(base, lengths) + np.repeat(sign, lengths) * within
    return np.ascontiguousarray(nodes[idx], dtype=CSR_NODE_DTYPE), out_offsets


def hop_endpoints(
    nodes: np.ndarray, offsets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Hop (head, tail) node arrays of a flattened path batch, unvalidated.

    Takes the ``(nodes, offsets)`` layout of :func:`flatten_paths`; hop ``j``
    of path ``i`` runs ``heads[k] -> tails[k]`` with consecutive hops of one
    path contiguous.  Paths contribute ``len(path) - 1`` hops each (zero-hop
    paths contribute none).  No edge validation — the verification kernels
    need the raw endpoints to report *which* hop is broken.
    """
    total = int(nodes.size)
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy()
    # drop each path's last node to get hop heads, first node to get tails
    head_mask = np.ones(total, dtype=bool)
    head_mask[offsets[1:] - 1] = False
    tail_mask = np.ones(total, dtype=bool)
    tail_mask[offsets[:-1]] = False
    return nodes[head_mask], nodes[tail_mask]


def hop_edge_ids(
    n: int, nodes: np.ndarray, offsets: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Directed edge ids of every hop of a flattened path batch.

    Layout as in :func:`hop_endpoints`; returns ``(eids, heads, tails)``.
    Validation as in :func:`hop_dimensions`.
    """
    heads, tails = hop_endpoints(nodes, offsets)
    if heads.size == 0:
        return heads.copy(), heads, tails
    dims = hop_dimensions(heads, tails, n)
    return heads * np.int64(n) + dims, heads, tails


def path_edge_matrix(
    n: int, paths: Sequence[Sequence[int]]
) -> Tuple[np.ndarray, np.ndarray]:
    """The padded per-path edge-id matrix of the vectorized engines.

    Returns ``(edges, lengths)``: ``edges`` is ``(len(paths), max_hops)``
    int64 with row ``i`` holding the directed edge ids of path ``i``'s hops
    and ``-1`` padding; ``lengths[i]`` is path ``i``'s hop count.  This is
    the encoding :class:`~repro.routing.fast_simulator.FastStoreForward`
    runs on, factored out so the wormhole engine and the verification
    kernels build it the same way.
    """
    nodes, offsets = flatten_paths(paths)
    lengths = np.diff(offsets) - 1
    lengths = np.maximum(lengths, 0)  # a 1-node path has zero hops
    num = len(paths)
    max_len = int(lengths.max()) if num else 0
    edges = np.full((num, max_len), -1, dtype=np.int64)
    if max_len == 0:
        return edges, lengths
    eids, _, _ = hop_edge_ids(n, nodes, offsets)
    rows = np.repeat(np.arange(num, dtype=np.int64), lengths)
    hop_starts = np.cumsum(lengths) - lengths  # first hop index of each path
    cols = np.arange(eids.size, dtype=np.int64) - np.repeat(hop_starts, lengths)
    edges[rows, cols] = eids
    return edges, lengths
