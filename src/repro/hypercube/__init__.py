"""Hypercube substrate: graphs, gray codes, moments, Hamiltonian decompositions.

This subpackage implements everything Section 3 of Greenberg & Bhatt (1990)
assumes about the Boolean hypercube:

* :mod:`repro.hypercube.graph` — the directed hypercube ``Q_n`` itself;
* :mod:`repro.hypercube.graycode` — the binary reflected gray code transition
  sequences ``G'_k``/``G_k`` and the Hamiltonian node sequence ``H_k``;
* :mod:`repro.hypercube.moments` — the *moment* labels of Definition 1;
* :mod:`repro.hypercube.torus` — Hamiltonian decompositions of ``C_m x C_n``
  (Kotzig's theorem, used as the product combinator);
* :mod:`repro.hypercube.hamiltonian` — Lemma 1: decompositions of ``Q_n``
  into edge-disjoint Hamiltonian cycles (plus a perfect matching for odd n).
"""

from repro.hypercube.graph import Hypercube
from repro.hypercube.graycode import (
    gray,
    gray_rank,
    gray_node_sequence,
    transitions,
    transitions_prime,
)
from repro.hypercube.moments import moment, moment_table, moment_label_bits
from repro.hypercube.hamiltonian import (
    hamiltonian_decomposition,
    directed_hamiltonian_decomposition,
    HypercubeDecomposition,
)

__all__ = [
    "Hypercube",
    "gray",
    "gray_rank",
    "gray_node_sequence",
    "transitions",
    "transitions_prime",
    "moment",
    "moment_table",
    "moment_label_bits",
    "hamiltonian_decomposition",
    "directed_hamiltonian_decomposition",
    "HypercubeDecomposition",
]
