"""The directed Boolean hypercube ``Q_n`` (paper Section 3).

Nodes are the integers ``0 .. 2**n - 1`` interpreted as n-bit addresses.
There is a directed edge ``(u, v)`` whenever the addresses differ in exactly
one bit; the edge *lies in dimension i* when that bit is bit ``i``.  Each
undirected hypercube link is modeled as a pair of oppositely directed edges,
exactly as in the paper ("we define the hypercube as a directed graph").

Directed edges are identified by the packed integer id ``u * n + d`` where
``d`` is the dimension — this gives O(1) vectorized congestion histograms
via ``np.bincount`` in the routing simulator.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = ["Hypercube"]


class Hypercube:
    """The n-dimensional directed Boolean hypercube ``Q_n``."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError(f"hypercube dimension must be non-negative, got {n}")
        if n > 30:
            raise ValueError(
                f"Q_{n} has {2**n} nodes; this in-memory model supports n <= 30"
            )
        self.n = n
        self.num_nodes = 1 << n
        self.num_edges = n * (1 << n)  # directed edges

    # -- node/edge arithmetic ------------------------------------------------

    def neighbor(self, u: int, d: int) -> int:
        """Return the neighbor of ``u`` across dimension ``d``."""
        self._check_node(u)
        self._check_dim(d)
        return u ^ (1 << d)

    def dimension_of(self, u: int, v: int) -> int:
        """Return the dimension of edge ``(u, v)``; raises if not an edge."""
        x = u ^ v
        if x == 0 or (x & (x - 1)) != 0:
            raise ValueError(f"({u}, {v}) is not a hypercube edge")
        self._check_node(u)
        self._check_node(v)
        return x.bit_length() - 1

    def is_edge(self, u: int, v: int) -> bool:
        """Return True when ``(u, v)`` is a (directed) hypercube edge."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            return False
        x = u ^ v
        return x != 0 and (x & (x - 1)) == 0

    def edge_id(self, u: int, v: int) -> int:
        """Return the packed id ``u * n + dimension`` of directed edge (u, v)."""
        return u * self.n + self.dimension_of(u, v)

    def edge_from_id(self, eid: int) -> Tuple[int, int]:
        """Invert :meth:`edge_id`."""
        u, d = divmod(eid, self.n)
        self._check_node(u)
        return u, u ^ (1 << d)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all directed edges ``(u, v)``."""
        for u in range(self.num_nodes):
            for d in range(self.n):
                yield u, u ^ (1 << d)

    def edge_array(self) -> np.ndarray:
        """Return all directed edges as an ``(n * 2**n, 2)`` numpy array."""
        u = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.n)
        d = np.tile(np.arange(self.n, dtype=np.int64), self.num_nodes)
        return np.stack([u, u ^ (np.int64(1) << d)], axis=1)

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over the ``n`` neighbors of ``u``."""
        self._check_node(u)
        for d in range(self.n):
            yield u ^ (1 << d)

    # -- path utilities --------------------------------------------------------

    def distance(self, u: int, v: int) -> int:
        """Hamming distance between the addresses of ``u`` and ``v``."""
        self._check_node(u)
        self._check_node(v)
        return (u ^ v).bit_count()

    def is_path(self, nodes) -> bool:
        """Return True when ``nodes`` is a walk along hypercube edges."""
        return all(self.is_edge(a, b) for a, b in zip(nodes, nodes[1:]))

    def path_dimensions(self, nodes) -> list:
        """Return the dimension crossed by each hop of the path ``nodes``."""
        return [self.dimension_of(a, b) for a, b in zip(nodes, nodes[1:])]

    # -- interop ----------------------------------------------------------------

    def to_networkx(self):
        """Export as a ``networkx.DiGraph`` (for verification cross-checks)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.num_nodes))
        for u, v in self.edges():
            g.add_edge(u, v, dimension=self.dimension_of(u, v))
        return g

    # -- misc ---------------------------------------------------------------------

    def __repr__(self) -> str:
        return f"Hypercube(n={self.n})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Hypercube) and other.n == self.n

    def __hash__(self) -> int:
        return hash(("Hypercube", self.n))

    def _check_node(self, u: int) -> None:
        if not (0 <= u < self.num_nodes):
            raise ValueError(f"node {u} out of range for Q_{self.n}")

    def _check_dim(self, d: int) -> None:
        if not (0 <= d < self.n):
            raise ValueError(f"dimension {d} out of range for Q_{self.n}")
