"""Moment labels (paper Section 3.2, Definition 1 and Lemma 2).

The *moment* of an n-bit address ``v`` is ``M(v) = XOR_{i : v_i = 1} b(i)``
where ``b(i)`` is the ``ceil(log2 n)``-bit binary representation of the
dimension index ``i`` (and ``M(0) = 0``).

Lemma 2: all ``n`` hypercube neighbors of any node have pairwise distinct
moments, because ``M(u ^ 2^i) = M(u) ^ b(i)`` and the ``b(i)`` are distinct.
This is the property that makes the "special cycle" assignments of
Theorems 1 and 2 neighborhood-rainbow, i.e. it guarantees the edge-disjoint
projections used for the middle path edges.

Note that moments take values in ``[0, 2**ceil(log2 n))``: when ``n`` is not
a power of two the label alphabet is strictly larger than ``n``.  The
consequences for Theorem 1/2 (which index ``2k`` edge-disjoint cycles by
moments) are discussed in ``repro.core.cycle_multipath``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["moment", "moment_table", "moment_label_bits"]


def moment_label_bits(n: int) -> int:
    """Number of bits in a moment label for ``Q_n``: ``ceil(log2 n)``."""
    if n < 1:
        raise ValueError(f"moment labels need n >= 1, got {n}")
    return max(1, (n - 1).bit_length())


def moment(v: int, n: int | None = None) -> int:
    """Return the moment ``M(v)`` of address ``v`` (Definition 1).

    ``n`` (the hypercube dimension) is only used for range checking; the
    moment itself depends on the set bits of ``v`` alone.
    """
    if v < 0:
        raise ValueError(f"address must be non-negative, got {v}")
    if n is not None and v >= (1 << n):
        raise ValueError(f"address {v} out of range for Q_{n}")
    m = 0
    i = 0
    while v:
        if v & 1:
            m ^= i
        v >>= 1
        i += 1
    return m


def moment_table(n: int) -> np.ndarray:
    """Return ``M(v)`` for every node ``v`` of ``Q_n`` as a numpy array.

    Vectorized: for each dimension ``i``, xor ``b(i) = i`` into the moment of
    every node whose bit ``i`` is set.
    """
    size = 1 << n
    idx = np.arange(size, dtype=np.int64)
    table = np.zeros(size, dtype=np.int64)
    for i in range(n):
        table[(idx >> i) & 1 == 1] ^= i
    return table
