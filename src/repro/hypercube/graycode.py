"""Binary reflected gray codes (paper Section 3, "Boolean Hypercubes and Graycodes").

The paper defines the *transition sequence* ``G'_k`` by ``G'_1 = 0`` and
``G'_{i+1} = G'_i . i . G'_i`` (``.`` is concatenation), then
``G_k = G'_k . (k-1)``.  ``G_k(j)`` is the dimension crossed by the *j*-th
edge of the gray-code Hamiltonian cycle ``H_k`` of ``Q_k``, which starts at
node ``0``.

``H_k(i)`` coincides with the classical reflected gray code
``gray(i) = i ^ (i >> 1)``; both forms are provided (the closed form is used
in vectorized hot paths, the recursive form mirrors the paper and is used in
the constructions and cross-checked in tests).
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

import numpy as np

__all__ = [
    "gray",
    "gray_rank",
    "gray_array",
    "gray_node_sequence",
    "transitions",
    "transitions_prime",
    "transition_at",
]


def gray(i: int) -> int:
    """Return the *i*-th binary reflected gray codeword, ``i ^ (i >> 1)``."""
    if i < 0:
        raise ValueError(f"gray index must be non-negative, got {i}")
    return i ^ (i >> 1)


def gray_rank(g: int) -> int:
    """Return ``i`` such that ``gray(i) == g`` (inverse gray code).

    Uses the prefix-XOR closed form: ``i = g ^ (g>>1) ^ (g>>2) ^ ...``.
    """
    if g < 0:
        raise ValueError(f"gray codeword must be non-negative, got {g}")
    i = 0
    while g:
        i ^= g
        g >>= 1
    return i


def gray_array(k: int) -> np.ndarray:
    """Return all ``2**k`` gray codewords as a numpy array (vectorized)."""
    idx = np.arange(1 << k, dtype=np.int64)
    return idx ^ (idx >> 1)


@lru_cache(maxsize=None)
def _transitions_prime_tuple(k: int) -> tuple:
    if k < 1:
        raise ValueError(f"G'_k is defined for k >= 1, got {k}")
    if k == 1:
        return (0,)
    prev = _transitions_prime_tuple(k - 1)
    return prev + (k - 1,) + prev


def transitions_prime(k: int) -> List[int]:
    """Return the paper's ``G'_k`` transition sequence (length ``2**k - 1``)."""
    return list(_transitions_prime_tuple(k))


def transitions(k: int) -> List[int]:
    """Return ``G_k = G'_k . (k-1)``, the closed-cycle transition sequence.

    ``G_k`` has length ``2**k``; crossing dimensions ``G_k(0), ..., G_k(2^k-1)``
    starting from node 0 traverses the gray-code Hamiltonian cycle of ``Q_k``
    and returns to node 0.
    """
    return transitions_prime(k) + [k - 1]


def transition_at(j: int) -> int:
    """Return ``G_k(j)`` for ``j < 2**k - 1`` without building the sequence.

    For the reflected gray code the *j*-th transition dimension is the number
    of trailing one-bits of ``j`` is *not* quite it: it is the position of the
    lowest set bit of ``j + 1`` (the ruler sequence).
    """
    if j < 0:
        raise ValueError(f"transition index must be non-negative, got {j}")
    return ((j + 1) & -(j + 1)).bit_length() - 1


def gray_node_sequence(k: int) -> List[int]:
    """Return the node sequence ``H_k`` of the gray-code Hamiltonian cycle.

    ``H_k(0) = 0`` and ``H_k(i+1) = H_k(i) XOR (1 << G_k(i))``.  The returned
    list has ``2**k`` nodes; the edge from the last node back to node 0
    crosses dimension ``k - 1``.
    """
    seq = [0]
    node = 0
    for d in transitions_prime(k):
        node ^= 1 << d
        seq.append(node)
    return seq
