"""Lemma 1: Hamiltonian decompositions of hypercubes (Alspach–Bermond–Sotteau).

* ``Q_{2k}`` decomposes into ``k`` edge-disjoint (undirected) Hamiltonian
  cycles; orienting each both ways yields ``2k`` edge-disjoint *directed*
  Hamiltonian cycles (the form Lemma 1 of the paper uses).
* ``Q_{2k+1}`` decomposes into ``k`` Hamiltonian cycles plus one perfect
  matching.

Construction (recursive, certified):

* base: ``Q_2 = C_4`` is a single Hamiltonian cycle;
* even ``n = a + b`` with ``a, b`` even and ``|a - b| <= 2``: pair the
  factors' cycles; each pair spans a ``C_{2^a} x C_{2^b}`` torus which is
  split in two by :func:`repro.hypercube.torus.torus_hamiltonian_decomposition`
  (Kotzig).  When ``a/2 = b/2 + 1`` the one unpaired cycle of the ``Q_a``
  factor initially forms ``2^b`` disjoint copies; an *absorption* pass merges
  the copies into a single Hamiltonian cycle by exchanging unit squares with
  the torus cycles (the Aubert–Schneider case), re-verifying after each swap;
* odd ``n = 2k + 1``: ``Q_n = Q_{2k} x K_2``; each cycle of ``Q_{2k}`` is
  "snaked" through both copies using two rung edges at cycle-distinct
  positions; the unused rungs plus the skipped wrap edges form the perfect
  matching.

Every decomposition is fully verified before being returned and cached
per ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "HypercubeDecomposition",
    "hamiltonian_decomposition",
    "directed_hamiltonian_decomposition",
    "verify_hamiltonian_decomposition",
]


@dataclass(frozen=True)
class HypercubeDecomposition:
    """Edge partition of ``Q_n`` into Hamiltonian cycles (+ matching if n odd).

    Attributes:
        n: hypercube dimension.
        cycles: ``n // 2`` undirected Hamiltonian cycles, each a closed node
            sequence of length ``2**n`` (the closing edge is implicit).
        matching: for odd ``n``, the leftover perfect matching as a list of
            ``2**(n-1)`` node pairs; ``None`` for even ``n``.
    """

    n: int
    cycles: Tuple[Tuple[int, ...], ...]
    matching: Optional[Tuple[Tuple[int, int], ...]] = None

    def directed_cycles(self) -> List[List[int]]:
        """Return ``2 * (n // 2)`` directed Hamiltonian cycles.

        Cycle ``2i`` is undirected cycle ``i`` traversed forward and cycle
        ``2i + 1`` is the same cycle reversed — the numbering convention
        Theorem 1 relies on ("names differing in the least significant bit
        correspond to opposite orientations of the same undirected cycle").
        """
        out: List[List[int]] = []
        for cyc in self.cycles:
            out.append(list(cyc))
            out.append([cyc[0]] + list(reversed(cyc[1:])))
        return out


_CACHE: Dict[int, HypercubeDecomposition] = {}


def hamiltonian_decomposition(n: int) -> HypercubeDecomposition:
    """Return a certified Hamiltonian decomposition of ``Q_n`` (Lemma 1)."""
    if n < 1:
        raise ValueError(f"Q_{n} has no Hamiltonian decomposition")
    if n not in _CACHE:
        if n == 1:
            dec = HypercubeDecomposition(1, (), (((0, 1),)))
        elif n == 2:
            dec = HypercubeDecomposition(2, ((0, 1, 3, 2),))
        elif n % 2 == 0:
            dec = _even_decomposition(n)
        else:
            dec = _odd_decomposition(n)
        verify_hamiltonian_decomposition(dec)
        _CACHE[n] = dec
    return _CACHE[n]


def directed_hamiltonian_decomposition(n: int) -> List[List[int]]:
    """Lemma 1's directed form: ``2 * (n // 2)`` directed Hamiltonian cycles."""
    return hamiltonian_decomposition(n).directed_cycles()


# ---------------------------------------------------------------------------
# even case
# ---------------------------------------------------------------------------


def _even_decomposition(n: int) -> HypercubeDecomposition:
    """Recursive case ``Q_n = Q_{n-2} x Q_2`` (n even, n >= 4).

    The first cycle of the ``Q_{n-2}`` decomposition is paired with the
    4-cycle ``Q_2``: their product spans a ``C_{2^{n-2}} x C_4`` torus, which
    Kotzig splits into two Hamiltonian cycles of ``Q_n``.  Every remaining
    ``Q_{n-2}`` cycle initially forms 4 disjoint level copies; an absorption
    pass merges each into a single Hamiltonian cycle by exchanging unit
    squares with the factors built so far (stealing two ``Q_2``-direction
    "rung" edges per merge).
    """
    a, b = n - 2, 2
    cyc_a = [list(c) for c in hamiltonian_decomposition(a).cycles]
    cyc_b = [list(c) for c in hamiltonian_decomposition(b).cycles]

    from repro.hypercube.torus import torus_hamiltonian_decomposition

    la = 1 << a
    lb = 1 << b
    t1, t2 = torus_hamiltonian_decomposition(la, lb)
    rows, cols = cyc_a[0], cyc_b[0]
    factors = [
        _Factor.from_cycle([(rows[v // lb] << b) | cols[v % lb] for v in t])
        for t in (t1, t2)
    ]
    for leftover in cyc_a[1:]:
        factors.append(_absorb_leftover(leftover, a, b, cyc_b, factors))

    cycles = tuple(tuple(f.to_cycle(1 << n)) for f in factors)
    return HypercubeDecomposition(n, cycles)


@dataclass
class _Factor:
    """A 2-regular spanning subgraph tracked as an undirected adjacency map."""

    adj: Dict[int, List[int]] = field(default_factory=dict)

    @classmethod
    def from_cycle(cls, seq: Sequence[int]) -> "_Factor":
        f = cls()
        for u, v in zip(seq, list(seq[1:]) + [seq[0]]):
            f.link(u, v)
        return f

    @classmethod
    def from_copies(cls, cycle: Sequence[int], b: int) -> "_Factor":
        """Disjoint copies of ``cycle`` (a ``Q_a`` cycle, to be placed in the
        high bits) at every value of the low ``b`` bits."""
        f = cls()
        for y in range(1 << b):
            for u, v in zip(cycle, list(cycle[1:]) + [cycle[0]]):
                f.link((u << b) | y, (v << b) | y)
        return f

    def link(self, u: int, v: int) -> None:
        self.adj.setdefault(u, []).append(v)
        self.adj.setdefault(v, []).append(u)

    def drop(self, u: int, v: int) -> None:
        self.adj[u].remove(v)
        self.adj[v].remove(u)

    def has_edge(self, u: int, v: int) -> bool:
        return u in self.adj and v in self.adj[u]

    def successor_map(self) -> Dict[int, int]:
        """Walk from an arbitrary vertex; valid only when a single cycle."""
        start = next(iter(self.adj))
        succ: Dict[int, int] = {}
        prev, cur = None, start
        while True:
            nxt = self.adj[cur][0] if self.adj[cur][0] != prev else self.adj[cur][1]
            succ[cur] = nxt
            prev, cur = cur, nxt
            if cur == start:
                return succ

    def is_single_cycle(self, expected: int) -> bool:
        if len(self.adj) != expected:
            return False
        if any(len(vs) != 2 for vs in self.adj.values()):
            return False
        return len(self.successor_map()) == expected

    def to_cycle(self, expected: int) -> List[int]:
        succ = self.successor_map()
        if len(succ) != expected:
            raise RuntimeError(
                f"factor covers {len(succ)}/{expected} vertices as one cycle"
            )
        start = next(iter(self.adj))
        seq = [start]
        cur = succ[start]
        while cur != start:
            seq.append(cur)
            cur = succ[cur]
        return seq


def _absorb_leftover(
    leftover: Sequence[int],
    a: int,
    b: int,
    cyc_b: Sequence[Sequence[int]],
    factors: List[_Factor],
) -> _Factor:
    """Merge the ``2**b`` disjoint copies of the unpaired ``Q_a`` cycle.

    The copies (one per ``y`` in ``Q_b``) are merged into a single Hamiltonian
    cycle of ``Q_{a+b}`` by unit-square exchanges with the torus Hamiltonian
    cycles already built: a swap moves one leftover edge from copies ``y`` and
    ``y'`` into a torus cycle ``T`` and takes the two ``(y, y')`` rung edges
    in exchange.  The swap merges the two copies; it is accepted only when
    ``T`` provably stays a single Hamiltonian cycle (same O(1) traversal-
    direction test as in the torus scheduler).
    """
    lb = 1 << b
    total = 1 << (a + b)
    fnew = _Factor.from_copies(leftover, b)

    # Union-find over the Q_b copy space.
    parent = list(range(lb))

    def find(y: int) -> int:
        while parent[y] != y:
            parent[y] = parent[parent[y]]
            y = parent[y]
        return y

    # Edge -> owning factor index, for the Q_b-direction ("rung") edges.
    edge_owner: Dict[Tuple[int, int], int] = {}
    for fi, f in enumerate(factors):
        for u, vs in f.adj.items():
            for v in vs:
                if u < v and (u ^ v) < lb:  # differs only in low (Q_b) bits
                    edge_owner[(u, v)] = fi

    # Candidate (y, y') pairs: edges of the Q_b Hamiltonian cycles (these
    # span the copy space, so chaining them merges every copy).
    pairs: List[Tuple[int, int]] = []
    for cyc in cyc_b:
        for y, y2 in zip(cyc, list(cyc[1:]) + [cyc[0]]):
            pairs.append((y, y2))

    la_edges = list(zip(leftover, list(leftover[1:]) + [leftover[0]]))

    merges_needed = lb - 1
    merges_done = 0
    progress = True
    succ_cache: Dict[int, Dict[int, int]] = {}
    while merges_done < merges_needed and progress:
        progress = False
        for y, y2 in pairs:
            if find(y) == find(y2):
                continue
            if _try_merge_copies(
                y, y2, b, la_edges, fnew, factors, edge_owner, succ_cache
            ):
                parent[find(y)] = find(y2)
                merges_done += 1
                progress = True
        # loop again: earlier-failed pairs may succeed after other merges
    if merges_done < merges_needed:
        raise RuntimeError(
            f"absorption failed: merged {merges_done}/{merges_needed} copies"
        )
    if not fnew.is_single_cycle(total):
        raise RuntimeError("absorbed factor is not a single Hamiltonian cycle")
    return fnew


def _try_merge_copies(
    y: int,
    y2: int,
    b: int,
    la_edges: Sequence[Tuple[int, int]],
    fnew: _Factor,
    factors: List[_Factor],
    edge_owner: Dict[Tuple[int, int], int],
    succ_cache: Dict[int, Dict[int, int]],
) -> bool:
    """Attempt one copy-merging square swap for the pair (y, y2)."""
    for x1, x2 in la_edges:
        u1, u2 = (x1 << b) | y, (x2 << b) | y      # leftover edge in copy y
        v1, v2 = (x1 << b) | y2, (x2 << b) | y2    # leftover edge in copy y2
        if not (fnew.has_edge(u1, u2) and fnew.has_edge(v1, v2)):
            continue
        r1 = (min(u1, v1), max(u1, v1))            # rung at x1
        r2 = (min(u2, v2), max(u2, v2))            # rung at x2
        fi1 = edge_owner.get(r1)
        fi2 = edge_owner.get(r2)
        if fi1 is None or fi1 != fi2:
            continue
        host = factors[fi1]
        succ = succ_cache.get(fi1)
        if succ is None:
            succ = host.successor_map()
            succ_cache[fi1] = succ
        # Host stays a single cycle iff the two removed rungs are traversed
        # in the same copy direction (same derivation as the torus scheduler).
        r1_forward = succ.get(u1) == v1
        if not r1_forward and succ.get(v1) != u1:
            continue
        r2_forward = succ.get(u2) == v2
        if not r2_forward and succ.get(v2) != u2:
            continue
        if r1_forward != r2_forward:
            continue
        # Perform the swap.
        fnew.drop(u1, u2)
        fnew.drop(v1, v2)
        host.drop(u1, v1)
        host.drop(u2, v2)
        fnew.link(u1, v1)
        fnew.link(u2, v2)
        host.link(u1, u2)
        host.link(v1, v2)
        del edge_owner[r1]
        del edge_owner[r2]
        succ_cache.pop(fi1, None)
        return True
    return False


# ---------------------------------------------------------------------------
# odd case
# ---------------------------------------------------------------------------


def _odd_decomposition(n: int) -> HypercubeDecomposition:
    k = (n - 1) // 2
    base = hamiltonian_decomposition(n - 1)
    top = 1 << (n - 1)

    used: Set[int] = set()
    cycles: List[Tuple[int, ...]] = []
    skipped: List[Tuple[int, int]] = []  # (pred, start) wrap pairs per cycle
    for cyc in base.cycles:
        length = len(cyc)
        t = next(
            t
            for t in range(length)
            if cyc[t] not in used and cyc[(t - 1) % length] not in used
        )
        start, pred = cyc[t], cyc[(t - 1) % length]
        used.update((start, pred))
        skipped.append((pred, start))
        # copy 0: start .. pred (forward); rung; copy 1: pred .. start (backward)
        forward = [cyc[(t + i) % length] for i in range(length)]
        snake = forward + [x | top for x in reversed(forward)]
        cycles.append(tuple(snake))

    matching: List[Tuple[int, int]] = []
    for pred, start in skipped:
        matching.append((pred, start))
        matching.append((pred | top, start | top))
    for x in range(top):
        if x not in used:
            matching.append((x, x | top))
    assert len(matching) == top  # 2^(n-1) pairs cover 2^n vertices
    assert len(cycles) == k
    return HypercubeDecomposition(n, tuple(cycles), tuple(matching))


# ---------------------------------------------------------------------------
# verification
# ---------------------------------------------------------------------------


def verify_hamiltonian_decomposition(dec: HypercubeDecomposition) -> None:
    """Raise unless ``dec`` is a valid Lemma 1 decomposition of ``Q_n``."""
    n = dec.n
    size = 1 << n
    expected_cycles = n // 2
    if len(dec.cycles) != expected_cycles:
        raise AssertionError(
            f"expected {expected_cycles} cycles for Q_{n}, got {len(dec.cycles)}"
        )

    def check_edge(u: int, v: int) -> None:
        x = u ^ v
        if not (0 <= u < size and 0 <= v < size) or x == 0 or x & (x - 1):
            raise AssertionError(f"({u}, {v}) is not an edge of Q_{n}")

    seen: Set[frozenset] = set()
    for cyc in dec.cycles:
        if len(cyc) != size or len(set(cyc)) != size:
            raise AssertionError("cycle is not Hamiltonian")
        for u, v in zip(cyc, list(cyc[1:]) + [cyc[0]]):
            check_edge(u, v)
            e = frozenset((u, v))
            if e in seen:
                raise AssertionError(f"edge {tuple(e)} reused across cycles")
            seen.add(e)

    if n % 2 == 1:
        if dec.matching is None:
            raise AssertionError("odd decomposition must include a matching")
        covered: Set[int] = set()
        for u, v in dec.matching:
            check_edge(u, v)
            e = frozenset((u, v))
            if e in seen:
                raise AssertionError("matching edge reused")
            seen.add(e)
            if u in covered or v in covered:
                raise AssertionError("matching covers a vertex twice")
            covered.update((u, v))
        if len(covered) != size:
            raise AssertionError("matching is not perfect")
    elif dec.matching is not None:
        raise AssertionError("even decomposition must not include a matching")

    if len(seen) != n * size // 2:
        raise AssertionError(
            f"decomposition covers {len(seen)} of {n * size // 2} undirected edges"
        )
