"""Hamiltonian decomposition of the torus ``C_m x C_n`` (Kotzig's theorem).

The 4-regular torus graph ``C_m x C_n`` (Cartesian product of two cycles)
decomposes into two edge-disjoint Hamiltonian cycles whenever ``m, n >= 3``
(Kotzig 1973).  This module implements two constructive cases, which cover
everything the hypercube decomposition of Lemma 1 needs:

* **even x even** — an explicit periodic tile.  Writing ``r = row % 2``,
  assign the horizontal edge leaving ``(row, c)`` rightward to factor
  ``(r + c) % 2`` and the vertical edge leaving ``(row, c)`` downward to
  factor ``r`` if ``c == 0`` else ``1 - r``.  Each vertex then has degree 2
  in both factors, and both factors are single Hamiltonian cycles for every
  even ``m, n >= 4`` (verified exhaustively for all even sizes up to 64 and
  re-verified at runtime for every size actually constructed);
* **square (m == n)** — a diagonal swap schedule: start from the trivial
  2-factorization (``F1`` = all row cycles, ``F2`` = all column cycles) and
  exchange the four edges of the unit squares ``(i, i)`` for
  ``i = 0 .. m-2``.  Each swap merges the two row cycles at its boundary and
  the two column cycles at its columns, so both factors end as single
  Hamiltonian cycles.

Every result is verified before being returned and cached per ``(m, n)``.
Vertices are encoded as ``row * n + col``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["torus_hamiltonian_decomposition", "verify_torus_decomposition"]

Adjacency = Dict[int, List[int]]

_CACHE: Dict[Tuple[int, int], Tuple[List[int], List[int]]] = {}


def torus_hamiltonian_decomposition(m: int, n: int) -> Tuple[List[int], List[int]]:
    """Split ``C_m x C_n`` into two Hamiltonian cycles (node sequences).

    Returns ``(cycle_a, cycle_b)``; each is a list of ``m * n`` vertex ids
    (``row * n + col``) describing a closed Hamiltonian cycle, and the two
    cycles are edge-disjoint with union equal to the full torus edge set.

    Supported shapes: both sides even (>= 4), or ``m == n >= 3``.  Results
    are cached per ``(m, n)``; callers must not mutate them.
    """
    if m < 3 or n < 3:
        raise ValueError(f"Kotzig decomposition needs m, n >= 3, got {m}x{n}")
    if (m, n) not in _CACHE:
        if n == 4 and m % 4 == 0:
            result = _c4_tile_decomposition(m)
        elif m == 4 and n % 4 == 0:
            ca, cb = torus_hamiltonian_decomposition(n, 4)
            result = (
                [(v % 4) * n + (v // 4) for v in ca],
                [(v % 4) * n + (v // 4) for v in cb],
            )
        elif m % 2 == 0 and n % 2 == 0:
            result = _tile_decomposition(m, n)
        elif m == n:
            result = _square_decomposition(m)
        else:
            raise NotImplementedError(
                f"C_{m} x C_{n}: only even x even and square tori are "
                "constructed here (all that Lemma 1 requires); the general "
                "case is Kotzig (1973)"
            )
        verify_torus_decomposition(m, n, *result)
        _CACHE[(m, n)] = result
    return _CACHE[(m, n)]


# ---------------------------------------------------------------------------
# C_m x C_4 with m % 4 == 0: absorption-friendly 4-row tile
# ---------------------------------------------------------------------------

# Factor assignment of the horizontal edge leaving (row, c) rightward and the
# vertical edge leaving (row, c) downward, indexed by (row % 4, c).  Unlike
# the checkerboard tile below, this tile gives every column boundary a pair
# of opposite-parity rows whose horizontal edges share a factor — the
# property the Lemma 1 absorption pass needs for its square exchanges
# (see repro.hypercube.hamiltonian).  Found by exhaustive tile search;
# verified for every height here at construction time.
_C4_TILE_H = ((0, 1, 0, 1), (1, 0, 1, 0), (1, 0, 0, 0), (1, 0, 0, 0))
_C4_TILE_V = ((1, 0, 0, 0), (0, 1, 1, 1), (1, 0, 1, 1), (0, 1, 1, 1))


def _c4_tile_decomposition(m: int) -> Tuple[List[int], List[int]]:
    n = 4
    adj: Tuple[Adjacency, Adjacency] = ({}, {})
    for row in range(m):
        r = row & 3
        for c in range(n):
            u = row * n + c
            _link(adj[_C4_TILE_H[r][c]], u, row * n + (c + 1) % n)
            _link(adj[_C4_TILE_V[r][c]], u, ((row + 1) % m) * n + c)
    return _extract_cycle(adj[0], m * n), _extract_cycle(adj[1], m * n)


# ---------------------------------------------------------------------------
# even x even: explicit periodic tile
# ---------------------------------------------------------------------------


def _tile_decomposition(m: int, n: int) -> Tuple[List[int], List[int]]:
    adj: Tuple[Adjacency, Adjacency] = ({}, {})
    for row in range(m):
        r = row & 1
        for c in range(n):
            u = row * n + c
            h_factor = (r + c) & 1
            v_factor = r if c == 0 else 1 - r
            _link(adj[h_factor], u, row * n + (c + 1) % n)
            _link(adj[v_factor], u, ((row + 1) % m) * n + c)
    return _extract_cycle(adj[0], m * n), _extract_cycle(adj[1], m * n)


# ---------------------------------------------------------------------------
# square m == n: diagonal swap schedule
# ---------------------------------------------------------------------------


def _square_decomposition(n: int) -> Tuple[List[int], List[int]]:
    m = n
    f1: Adjacency = {}
    f2: Adjacency = {}
    for r in range(m):
        for c in range(n):
            v = r * n + c
            f1[v] = [r * n + (c - 1) % n, r * n + (c + 1) % n]
            f2[v] = [((r - 1) % m) * n + c, ((r + 1) % m) * n + c]
    for i in range(m - 1):
        # Swap the unit square at row boundary i, column boundary i: its
        # horizontal pair moves to F2 and its vertical pair to F1.  This
        # merges row cycles i, i+1 in F1 and column cycles i, i+1 in F2;
        # the diagonal keeps every swapped square pristine.
        a, b = i * n + i, i * n + i + 1
        d, e = (i + 1) * n + i, (i + 1) * n + i + 1
        _drop(f1, a, b)
        _drop(f1, d, e)
        _drop(f2, a, d)
        _drop(f2, b, e)
        _link(f1, a, d)
        _link(f1, b, e)
        _link(f2, a, b)
        _link(f2, d, e)
    return _extract_cycle(f1, m * n), _extract_cycle(f2, m * n)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _drop(adj: Adjacency, u: int, v: int) -> None:
    adj[u].remove(v)
    adj[v].remove(u)


def _link(adj: Adjacency, u: int, v: int) -> None:
    adj.setdefault(u, []).append(v)
    adj.setdefault(v, []).append(u)


def _extract_cycle(adj: Adjacency, expected: int) -> List[int]:
    start = next(iter(adj))
    seq = [start]
    prev, cur = None, start
    while True:
        neighbors = adj[cur]
        if len(neighbors) != 2:
            raise RuntimeError(f"factor is not 2-regular at vertex {cur}")
        nxt = neighbors[0] if neighbors[0] != prev else neighbors[1]
        if nxt == start:
            break
        seq.append(nxt)
        prev, cur = cur, nxt
    if len(seq) != expected:
        raise RuntimeError(
            f"factor is not a Hamiltonian cycle: covered {len(seq)}/{expected}"
        )
    return seq


def verify_torus_decomposition(
    m: int, n: int, cycle_a: Sequence[int], cycle_b: Sequence[int]
) -> None:
    """Raise unless the two cycles form a Hamiltonian decomposition of C_m x C_n."""
    total = m * n

    def edge_set(cycle: Sequence[int]) -> set:
        if len(cycle) != total or len(set(cycle)) != total:
            raise AssertionError("cycle is not Hamiltonian (vertex cover)")
        edges = set()
        for u, v in zip(cycle, list(cycle[1:]) + [cycle[0]]):
            ru, cu = divmod(u, n)
            rv, cv = divmod(v, n)
            row_step = (ru - rv) % m in (1, m - 1) and cu == cv
            col_step = (cu - cv) % n in (1, n - 1) and ru == rv
            if not (row_step or col_step):
                raise AssertionError(f"({u}, {v}) is not a torus edge")
            edges.add(frozenset((u, v)))
        if len(edges) != total:
            raise AssertionError("cycle repeats an edge")
        return edges

    ea, eb = edge_set(cycle_a), edge_set(cycle_b)
    if ea & eb:
        raise AssertionError("cycles are not edge-disjoint")
    if len(ea | eb) != 2 * total:
        raise AssertionError("cycles do not cover all torus edges")
